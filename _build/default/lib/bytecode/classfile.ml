(* Runtime class model and instruction set.

   This is the MJ analogue of JVM class files: after {!Link.link_program},
   every class has a complete instance-field layout (inherited fields
   first), every method has a bytecode array, and static fields are mapped
   to indices in one global array. The bytecode is a classic stack machine;
   jump targets are absolute bytecode indices. *)

open Pea_mjava

type ty = Ast.ty

type rt_class = {
  cls_id : int;
  cls_name : string;
  mutable cls_super : rt_class option; (* [None] only for Object *)
  (* Complete layout: inherited fields first, then own fields. The field's
     offset is its index in this array. *)
  mutable cls_instance_fields : rt_field array;
  mutable cls_methods : rt_method list; (* own methods only, including ctor *)
}

and rt_field = {
  fld_owner : string;
  fld_name : string;
  fld_ty : ty;
  fld_offset : int;
}

and rt_static_field = {
  sf_owner : string;
  sf_name : string;
  sf_ty : ty;
  sf_index : int; (* index into the VM's globals array *)
}

and rt_method = {
  mth_id : int;
  mth_class : rt_class;
  mth_name : string;
  mth_static : bool;
  mth_sync : bool;
  mth_ret : ty option;
  mth_params : ty list;
  mutable mth_max_locals : int; (* includes [this] for instance methods *)
  mutable mth_code : instr array;
  mutable mth_handlers : handler list;
      (* exception handler table; searched in order (innermost try first) *)
  mutable mth_size : int; (* statement-level size estimate for inlining *)
}

and handler = {
  h_start : int;
  h_end : int; (* exclusive *)
  h_pc : int;
  h_class : rt_class;
}

and cmp =
  | Clt
  | Cle
  | Cgt
  | Cge
  | Ceq
  | Cne

and acmp =
  | AEq
  | ANe

and instr =
  | Iconst of int
  | Bconst of bool
  | Aconst_null
  | Load of int (* push local [slot] *)
  | Store of int (* pop into local [slot] *)
  | Dup
  | Pop
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Bnot
  | Icmp of cmp (* pop b, a; push a <cmp> b *)
  | Acmp of acmp (* reference comparison *)
  | New of rt_class (* push fresh object with default fields *)
  | Newarray of ty (* element type; pop length, push array *)
  | Arraylength
  | Aload (* pop index, array; push element *)
  | Astore (* pop value, index, array *)
  | Getfield of rt_field
  | Putfield of rt_field (* pop value, receiver *)
  | Getstatic of rt_static_field
  | Putstatic of rt_static_field
  | Invokevirtual of rt_method (* statically resolved target; dispatched on receiver *)
  | Invokestatic of rt_method
  | Invokespecial of rt_method (* constructor; pops receiver + args, pushes nothing *)
  | Monitorenter
  | Monitorexit
  | Goto of int
  | If_true of int (* pop bool; branch when true *)
  | If_false of int
  | Instanceof of rt_class
  | Checkcast of rt_class
  | Athrow (* pop object; unwind to the nearest matching handler *)
  | Return_void
  | Return_val
  | Print

let arity (m : rt_method) = List.length m.mth_params + if m.mth_static then 0 else 1

(* Methods that throw or catch run interpreter-only: the JIT bails out on
   them (as early JITs did) and the inliner refuses them as callees. *)
let uses_exceptions (m : rt_method) =
  m.mth_handlers <> [] || Array.exists (function Athrow -> true | _ -> false) m.mth_code

(* [is_subclass ~cls ~anc] walks the superclass chain. *)
let is_subclass ~cls ~anc =
  let rec loop (c : rt_class) =
    c.cls_id = anc.cls_id || (match c.cls_super with None -> false | Some s -> loop s)
  in
  loop cls

(* Virtual-dispatch resolution: the most-derived override of [name] found
   starting at [cls]. *)
let resolve_method (cls : rt_class) name =
  let rec loop (c : rt_class) =
    match List.find_opt (fun m -> m.mth_name = name) c.cls_methods with
    | Some m -> Some m
    | None -> ( match c.cls_super with None -> None | Some s -> loop s)
  in
  loop cls

(* [is_leaf_method prog m] — no class in [prog] overrides [m]; used by the
   inliner for class-hierarchy-analysis devirtualization. *)
let find_field (cls : rt_class) name =
  Array.to_seq cls.cls_instance_fields |> Seq.find (fun f -> f.fld_name = name)

let qualified_name (m : rt_method) = m.mth_class.cls_name ^ "." ^ m.mth_name

let string_of_cmp = function
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="
  | Ceq -> "=="
  | Cne -> "!="

let string_of_instr (i : instr) =
  match i with
  | Iconst n -> Printf.sprintf "iconst %d" n
  | Bconst b -> Printf.sprintf "bconst %b" b
  | Aconst_null -> "aconst_null"
  | Load n -> Printf.sprintf "load %d" n
  | Store n -> Printf.sprintf "store %d" n
  | Dup -> "dup"
  | Pop -> "pop"
  | Iadd -> "iadd"
  | Isub -> "isub"
  | Imul -> "imul"
  | Idiv -> "idiv"
  | Irem -> "irem"
  | Ineg -> "ineg"
  | Bnot -> "bnot"
  | Icmp c -> Printf.sprintf "icmp %s" (string_of_cmp c)
  | Acmp AEq -> "acmp =="
  | Acmp ANe -> "acmp !="
  | New c -> Printf.sprintf "new %s" c.cls_name
  | Newarray t -> Printf.sprintf "newarray %s" (Ast.string_of_ty t)
  | Arraylength -> "arraylength"
  | Aload -> "aload"
  | Astore -> "astore"
  | Getfield f -> Printf.sprintf "getfield %s.%s" f.fld_owner f.fld_name
  | Putfield f -> Printf.sprintf "putfield %s.%s" f.fld_owner f.fld_name
  | Getstatic f -> Printf.sprintf "getstatic %s.%s" f.sf_owner f.sf_name
  | Putstatic f -> Printf.sprintf "putstatic %s.%s" f.sf_owner f.sf_name
  | Invokevirtual m -> Printf.sprintf "invokevirtual %s" (qualified_name m)
  | Invokestatic m -> Printf.sprintf "invokestatic %s" (qualified_name m)
  | Invokespecial m -> Printf.sprintf "invokespecial %s" (qualified_name m)
  | Monitorenter -> "monitorenter"
  | Monitorexit -> "monitorexit"
  | Goto t -> Printf.sprintf "goto %d" t
  | If_true t -> Printf.sprintf "if_true %d" t
  | If_false t -> Printf.sprintf "if_false %d" t
  | Instanceof c -> Printf.sprintf "instanceof %s" c.cls_name
  | Checkcast c -> Printf.sprintf "checkcast %s" c.cls_name
  | Athrow -> "athrow"
  | Return_void -> "return"
  | Return_val -> "return_val"
  | Print -> "print"

let disassemble (m : rt_method) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s%s(%s)%s  [max_locals=%d]\n"
       (if m.mth_static then "static " else "")
       (qualified_name m)
       (String.concat ", " (List.map Ast.string_of_ty m.mth_params))
       (match m.mth_ret with None -> "" | Some t -> " : " ^ Ast.string_of_ty t)
       m.mth_max_locals);
  Array.iteri
    (fun i instr -> Buffer.add_string buf (Printf.sprintf "  %3d: %s\n" i (string_of_instr instr)))
    m.mth_code;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "  handler [%d, %d) -> %d catch %s\n" h.h_start h.h_end h.h_pc
           h.h_class.cls_name))
    m.mth_handlers;
  Buffer.contents buf
