(** Runtime class model and instruction set.

    The MJ analogue of JVM class files: after {!Link.link_program} every
    class has a complete instance-field layout (inherited fields first, a
    field's offset is its index), every method has a bytecode array, and
    static fields map to indices in one global array. The bytecode is a
    classic stack machine; jump targets are absolute bytecode indices. *)

open Pea_mjava

type ty = Ast.ty

type rt_class = {
  cls_id : int;
  cls_name : string;
  mutable cls_super : rt_class option; (* [None] only for Object *)
  mutable cls_instance_fields : rt_field array; (* full layout, inherited first *)
  mutable cls_methods : rt_method list; (* own methods only, including the ctor *)
}

and rt_field = {
  fld_owner : string; (* declaring class *)
  fld_name : string;
  fld_ty : ty;
  fld_offset : int; (* index into [o_fields] *)
}

and rt_static_field = {
  sf_owner : string;
  sf_name : string;
  sf_ty : ty;
  sf_index : int; (* index into the VM's globals array *)
}

and rt_method = {
  mth_id : int;
  mth_class : rt_class;
  mth_name : string;
  mth_static : bool;
  mth_sync : bool;
  mth_ret : ty option; (* [None] for void and constructors *)
  mth_params : ty list;
  mutable mth_max_locals : int; (* includes [this] for instance methods *)
  mutable mth_code : instr array;
  mutable mth_handlers : handler list;
      (* exception handler table; searched in order (innermost try first) *)
  mutable mth_size : int; (* size estimate consumed by the inliner *)
}

(* One [try] range: a thrown object of class [h_class] (or a subclass)
   unwinding from a bytecode index in [h_start, h_end) transfers to
   [h_pc] with the object as the only stack entry. *)
and handler = {
  h_start : int;
  h_end : int;
  h_pc : int;
  h_class : rt_class;
}

and cmp =
  | Clt
  | Cle
  | Cgt
  | Cge
  | Ceq
  | Cne

and acmp =
  | AEq
  | ANe

and instr =
  | Iconst of int
  | Bconst of bool
  | Aconst_null
  | Load of int (* push local [slot] *)
  | Store of int
  | Dup
  | Pop
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Bnot
  | Icmp of cmp (* pop b, a; push a <cmp> b *)
  | Acmp of acmp
  | New of rt_class
  | Newarray of ty (* element type; pop length *)
  | Arraylength
  | Aload (* pop index, array; push element *)
  | Astore (* pop value, index, array *)
  | Getfield of rt_field
  | Putfield of rt_field
  | Getstatic of rt_static_field
  | Putstatic of rt_static_field
  | Invokevirtual of rt_method (* statically resolved; dispatched on receiver *)
  | Invokestatic of rt_method
  | Invokespecial of rt_method (* constructor call *)
  | Monitorenter
  | Monitorexit
  | Goto of int
  | If_true of int (* pop bool; branch when true *)
  | If_false of int
  | Instanceof of rt_class
  | Checkcast of rt_class
  | Athrow (* pop object; unwind to the nearest matching handler *)
  | Return_void
  | Return_val
  | Print

(** [arity m] — argument count including the receiver for instance
    methods. *)
val arity : rt_method -> int

(** [uses_exceptions m] — does [m] contain [Athrow] or a handler table?
    Such methods run interpreter-only (JIT bailout). *)
val uses_exceptions : rt_method -> bool

(** [is_subclass ~cls ~anc] walks the superclass chain (reflexive). *)
val is_subclass : cls:rt_class -> anc:rt_class -> bool

(** [resolve_method cls name] — virtual dispatch: the most-derived
    override of [name] visible from [cls]. *)
val resolve_method : rt_class -> string -> rt_method option

(** [find_field cls name] looks a field up in the complete layout
    (inherited fields included). *)
val find_field : rt_class -> string -> rt_field option

(** [qualified_name m] is ["Class.method"]. *)
val qualified_name : rt_method -> string

val string_of_cmp : cmp -> string

val string_of_instr : instr -> string

(** [disassemble m] renders the method header and numbered bytecode. *)
val disassemble : rt_method -> string
