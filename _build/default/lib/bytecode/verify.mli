(** Bytecode verifier.

    A lightweight analogue of the JVM's verifier: abstract interpretation
    of operand-stack depths over each method's bytecode. Catches compiler
    bugs at link time instead of as interpreter crashes:

    - no stack underflow at any instruction;
    - consistent depth at every join point;
    - [Return_val] with a value on the stack, in value-returning methods
      only;
    - jump targets in range;
    - exception handlers entered with exactly the thrown object on the
      stack, and handler ranges within the code. *)

exception Verify_error of string

(** [verify_method m] checks one compiled method.
    @raise Verify_error describing the first violation. *)
val verify_method : Classfile.rt_method -> unit

(** [verify_program p] checks every method of a linked program. *)
val verify_program : Link.program -> unit
