(** Compilation of typed MiniJava methods to MJ bytecode.

    The compiler is used by {!Link.link_program}; it needs an already-built
    class environment to resolve field offsets and call targets. *)

open Pea_mjava

(** Resolution environment handed to the compiler by the linker. *)
type resolver = {
  find_class : string -> Classfile.rt_class;
  find_field : string -> string -> Classfile.rt_field; (* class, field *)
  find_static : string -> string -> Classfile.rt_static_field;
  find_method : string -> string -> Classfile.rt_method; (* declaring class, name *)
}

exception Compile_error of string

(** [compile_method resolver tmethod rt_method] compiles the body of
    [tmethod] and stores the code into [rt_method]. [synchronized] methods
    get an explicit monitorenter/monitorexit wrapping, so that inlining
    exposes the monitor operations to the optimizer (paper, Listing 2). *)
val compile_method : resolver -> Tast.tmethod -> Classfile.rt_method -> unit
