open Pea_mjava
open Tast
open Classfile

type resolver = {
  find_class : string -> rt_class;
  find_field : string -> string -> rt_field;
  find_static : string -> string -> rt_static_field;
  find_method : string -> string -> rt_method;
}

exception Compile_error of string

(* ------------------------------------------------------------------ *)
(* Emitter with label patching                                         *)
(* ------------------------------------------------------------------ *)

type emitter = {
  code : instr Pea_support.Dyn_array.t;
  mutable labels : int array; (* label -> pc, -1 while unplaced *)
  mutable n_labels : int;
  mutable patches : (int * int * [ `Goto | `If_true | `If_false ]) list;
      (* instruction index, label, kind *)
  mutable next_temp : int; (* next free local slot for compiler temps *)
  mutable sync_slots : int list; (* innermost-first locked-object slots *)
  mutable handlers : (int * int * int * rt_class) list;
      (* start pc, end pc, handler label, caught class — innermost first *)
}

let emitter_create ~first_temp =
  {
    code = Pea_support.Dyn_array.create ();
    labels = Array.make 16 (-1);
    n_labels = 0;
    patches = [];
    next_temp = first_temp;
    sync_slots = [];
    handlers = [];
  }

let emit e i = ignore (Pea_support.Dyn_array.push e.code i)

let pc e = Pea_support.Dyn_array.length e.code

let new_label e =
  if e.n_labels = Array.length e.labels then begin
    let bigger = Array.make (2 * e.n_labels) (-1) in
    Array.blit e.labels 0 bigger 0 e.n_labels;
    e.labels <- bigger
  end;
  let l = e.n_labels in
  e.n_labels <- e.n_labels + 1;
  l

let place_label e l = e.labels.(l) <- pc e

let emit_jump e kind l =
  let idx = pc e in
  emit e (Goto (-1));
  e.patches <- (idx, l, kind) :: e.patches

let fresh_temp e =
  let t = e.next_temp in
  e.next_temp <- t + 1;
  t

let finish e =
  List.iter
    (fun (idx, l, kind) ->
      let target = e.labels.(l) in
      if target < 0 then raise (Compile_error "unplaced label");
      let i =
        match kind with
        | `Goto -> Goto target
        | `If_true -> If_true target
        | `If_false -> If_false target
      in
      Pea_support.Dyn_array.set e.code idx i)
    e.patches;
  let handlers =
    List.rev_map
      (fun (h_start, h_end, l, h_class) ->
        let h_pc = e.labels.(l) in
        if h_pc < 0 then raise (Compile_error "unplaced handler label");
        { h_start; h_end; h_pc; h_class })
      e.handlers
    |> List.rev
  in
  (Array.of_list (Pea_support.Dyn_array.to_list e.code), handlers)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let cmp_of_binop : Ast.binop -> cmp = function
  | Lt -> Clt
  | Le -> Cle
  | Gt -> Cgt
  | Ge -> Cge
  | Eq -> Ceq
  | Ne -> Cne
  | Add | Sub | Mul | Div | Rem | RefEq | RefNe ->
      raise (Compile_error "not a comparison operator")

let rec compile_expr r e te =
  match te.tex with
  | Tint_lit n -> emit e (Iconst n)
  | Tbool_lit b -> emit e (Bconst b)
  | Tnull_lit -> emit e Aconst_null
  | Tthis -> emit e (Load 0)
  | Tlocal v -> emit e (Load v.v_slot)
  | Tunary (Neg, a) ->
      compile_expr r e a;
      emit e Ineg
  | Tunary (Not, a) ->
      compile_expr r e a;
      emit e Bnot
  | Tbinary (op, a, b) -> (
      compile_expr r e a;
      compile_expr r e b;
      match op with
      | Add -> emit e Iadd
      | Sub -> emit e Isub
      | Mul -> emit e Imul
      | Div -> emit e Idiv
      | Rem -> emit e Irem
      | Lt | Le | Gt | Ge -> emit e (Icmp (cmp_of_binop op))
      | Eq | Ne -> emit e (Icmp (cmp_of_binop op))
      | RefEq -> emit e (Acmp AEq)
      | RefNe -> emit e (Acmp ANe))
  | Tand (a, b) ->
      (* a && b: if !a then false else b *)
      let l_false = new_label e and l_end = new_label e in
      compile_expr r e a;
      emit_jump e `If_false l_false;
      compile_expr r e b;
      emit_jump e `Goto l_end;
      place_label e l_false;
      emit e (Bconst false);
      place_label e l_end
  | Tor (a, b) ->
      let l_true = new_label e and l_end = new_label e in
      compile_expr r e a;
      emit_jump e `If_true l_true;
      compile_expr r e b;
      emit_jump e `Goto l_end;
      place_label e l_true;
      emit e (Bconst true);
      place_label e l_end
  | Tfield (recv, fr) ->
      compile_expr r e recv;
      emit e (Getfield (r.find_field fr.fr_class fr.fr_name))
  | Tstatic_field fr -> emit e (Getstatic (r.find_static fr.fr_class fr.fr_name))
  | Tindex (arr, idx) ->
      compile_expr r e arr;
      compile_expr r e idx;
      emit e Aload
  | Tlength arr ->
      compile_expr r e arr;
      emit e Arraylength
  | Tcall (recv, mr, args) ->
      compile_expr r e recv;
      List.iter (compile_expr r e) args;
      emit e (Invokevirtual (r.find_method mr.mr_class mr.mr_name))
  | Tstatic_call (mr, args) ->
      List.iter (compile_expr r e) args;
      emit e (Invokestatic (r.find_method mr.mr_class mr.mr_name))
  | Tnew (cls, args) -> (
      let c = r.find_class cls in
      emit e (New c);
      match resolve_method c Ast.ctor_name with
      | Some ctor when ctor.mth_class.cls_name = cls ->
          emit e Dup;
          List.iter (compile_expr r e) args;
          emit e (Invokespecial ctor)
      | Some _ | None ->
          if args <> [] then raise (Compile_error ("class " ^ cls ^ " has no constructor")))
  | Tnew_array (elem, len) ->
      compile_expr r e len;
      emit e (Newarray elem)
  | Tinstance_of (a, cls) ->
      compile_expr r e a;
      emit e (Instanceof (r.find_class cls))
  | Tcast (cls, a) ->
      compile_expr r e a;
      emit e (Checkcast (r.find_class cls))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Emit monitorexits for every currently held monitor, innermost first.
   Used before return statements inside synchronized regions. *)
let emit_all_monitor_exits e =
  List.iter
    (fun slot ->
      emit e (Load slot);
      emit e Monitorexit)
    e.sync_slots

let rec compile_stmt r e (s : tstmt) =
  match s with
  | Tdecl (v, init) -> (
      match init with
      | Some te ->
          compile_expr r e te;
          emit e (Store v.v_slot)
      | None -> ())
  | Tassign_local (v, te) ->
      compile_expr r e te;
      emit e (Store v.v_slot)
  | Tassign_field (recv, fr, te) ->
      compile_expr r e recv;
      compile_expr r e te;
      emit e (Putfield (r.find_field fr.fr_class fr.fr_name))
  | Tassign_static (fr, te) ->
      compile_expr r e te;
      emit e (Putstatic (r.find_static fr.fr_class fr.fr_name))
  | Tassign_index (arr, idx, te) ->
      compile_expr r e arr;
      compile_expr r e idx;
      compile_expr r e te;
      emit e Astore
  | Tif (cond, thn, els) -> (
      match els with
      | None ->
          let l_end = new_label e in
          compile_expr r e cond;
          emit_jump e `If_false l_end;
          compile_stmt r e thn;
          place_label e l_end
      | Some els ->
          let l_else = new_label e and l_end = new_label e in
          compile_expr r e cond;
          emit_jump e `If_false l_else;
          compile_stmt r e thn;
          emit_jump e `Goto l_end;
          place_label e l_else;
          compile_stmt r e els;
          place_label e l_end)
  | Twhile (cond, body) ->
      let l_head = new_label e and l_end = new_label e in
      place_label e l_head;
      compile_expr r e cond;
      emit_jump e `If_false l_end;
      compile_stmt r e body;
      emit_jump e `Goto l_head;
      place_label e l_end
  | Treturn te -> (
      (* Compute the return value first; it stays on the stack across the
         monitor exits (each exit pops only its own operand). *)
      match te with
      | None ->
          emit_all_monitor_exits e;
          emit e Return_void
      | Some te' ->
          compile_expr r e te';
          emit_all_monitor_exits e;
          emit e Return_val)
  | Tsync (obj, body) ->
      let slot = fresh_temp e in
      compile_expr r e obj;
      emit e (Store slot);
      emit e (Load slot);
      emit e Monitorenter;
      e.sync_slots <- slot :: e.sync_slots;
      List.iter (compile_stmt r e) body;
      e.sync_slots <- List.tl e.sync_slots;
      emit e (Load slot);
      emit e Monitorexit
  | Tblock body -> List.iter (compile_stmt r e) body
  | Texpr te -> (
      compile_expr r e te;
      (* discard the result if the expression leaves one *)
      match te.tex with
      | Tcall (_, mr, _) | Tstatic_call (mr, _) -> if mr.mr_ret <> None then emit e Pop
      | Tnew _ -> emit e Pop
      | _ -> emit e Pop)
  | Tprint te ->
      compile_expr r e te;
      emit e Print
  | Tthrow te ->
      compile_expr r e te;
      emit e Athrow
  | Ttry (body, clauses) ->
      (* Handler ranges cover the body only; nested try blocks register
         their entries first, so the interpreter's in-order search finds
         the innermost handler. Note that MJ exceptions do not release
         monitors acquired inside the aborted region (documented language
         rule; the single-threaded lock model keeps this benign). *)
      let l_end = new_label e in
      let start = pc e in
      List.iter (compile_stmt r e) body;
      let stop = pc e in
      emit_jump e `Goto l_end;
      List.iter
        (fun ((cls : string), (v : var), handler_body) ->
          let l_h = new_label e in
          place_label e l_h;
          emit e (Store v.v_slot);
          List.iter (compile_stmt r e) handler_body;
          emit_jump e `Goto l_end;
          e.handlers <- e.handlers @ [ (start, stop, l_h, r.find_class cls) ])
        clauses;
      place_label e l_end

let compile_method r (tm : tmethod) (m : rt_method) =
  let e = emitter_create ~first_temp:tm.tm_max_locals in
  if tm.tm_sync then begin
    (* synchronized instance method: lock [this] around the whole body *)
    emit e (Load 0);
    emit e Monitorenter;
    e.sync_slots <- [ 0 ]
  end;
  List.iter (compile_stmt r e) tm.tm_body;
  (* fall-through end of a void method/constructor *)
  (match tm.tm_ret with
  | None ->
      emit_all_monitor_exits e;
      emit e Return_void
  | Some _ ->
      (* unreachable (definite-return analysis), but keep the code array
         well-formed *)
      emit e (Iconst 0);
      emit e Return_val);
  let code, handlers = finish e in
  m.mth_code <- code;
  m.mth_handlers <- handlers;
  m.mth_max_locals <- e.next_temp;
  m.mth_size <- Array.length m.mth_code
