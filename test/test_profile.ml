(* Tests for the cycle-exact observability stack: the sampling profiler
   (Profile_cpu), the allocation-site heap profiler (Profile_heap), the
   flight recorder, and the [mjvm report] aggregation.

   The determinism cases deliberately bypass [Test_env.apply]: they
   compare execution tiers and compile modes against each other, and
   forcing one from the environment would collapse the comparison (same
   reasoning as prop_tier_differential). The parity property at the end
   is the axis-friendly half: whatever the configuration, profiling on
   vs off must not move any result or deterministic counter. *)

open Pea_bytecode
open Pea_rt
open Pea_vm
module Pcpu = Pea_obs.Profile_cpu
module Pheap = Pea_obs.Profile_heap
module Trace = Pea_obs.Trace
module Flight = Pea_obs.Flight

(* Install fresh profilers for [f], restoring whatever was globally
   installed before (the MJVM_TEST_PROFILE axis installs suite-wide
   profilers at startup). *)
let with_profilers ?(interval = 256) f =
  let saved_cpu = Pcpu.installed () and saved_heap = Pheap.installed () in
  let cpu = Pcpu.create ~interval () in
  let heap = Pheap.create () in
  Pcpu.install cpu;
  Pheap.install heap;
  Fun.protect
    ~finally:(fun () ->
      (match saved_cpu with Some p -> Pcpu.install p | None -> Pcpu.uninstall ());
      match saved_heap with Some p -> Pheap.install p | None -> Pheap.uninstall ())
    (fun () -> f cpu heap)

(* Run [src] under fresh profilers and hand back (vm result, report). *)
let run_profiled ?interval ?(iterations = 8) ?(threshold = 4) ?(opt = Jit.O_pea)
    ?(tier = Jit.Closure) ?(mode = Jit.Sync) ?(osr = true) src =
  with_profilers ?interval (fun cpu heap ->
      let program = Link.compile_source src in
      let config =
        {
          Jit.default_config with
          Jit.opt;
          compile_threshold = threshold;
          exec_tier = tier;
          compile_mode = mode;
          osr;
        }
      in
      let vm = Vm.create ~config program in
      let r = Vm.run_main_iterations vm iterations in
      Vm.quiesce vm;
      let report =
        Report.collect ~program ~cpu ~heap ~pea_sites:(Vm.jit_stats vm).Pea_core.Pea.sites ()
      in
      (r, report))

let renderings rp = (Report.to_string rp, Report.to_json rp, Report.collapsed rp)

(* ------------------------------------------------------------------ *)
(* Determinism goldens                                                 *)
(* ------------------------------------------------------------------ *)

(* The full report — collapsed stacks included — is byte-identical when
   the same program runs twice. *)
let test_identical_across_runs () =
  let _, a = run_profiled Programs.cache_loop in
  let _, b = run_profiled Programs.cache_loop in
  Alcotest.(check bool) "some samples" true (a.Report.rp_total > 0);
  Alcotest.(check (triple string string string)) "byte-identical" (renderings a) (renderings b)

(* Direct and closure tiers sample at the same cycle clock values, so
   they produce the same profile, not just the same counters. *)
let test_identical_across_tiers () =
  let _, d = run_profiled ~tier:Jit.Direct Programs.cache_loop in
  let _, c = run_profiled ~tier:Jit.Closure Programs.cache_loop in
  Alcotest.(check bool) "compiled samples exist" true
    (List.exists (fun (t, w) -> t <> "interp" && w > 0) d.Report.rp_tiers);
  Alcotest.(check (triple string string string)) "tier-identical" (renderings d) (renderings c)

(* Replay is async's deterministic twin: identical profiles, per the
   same clock argument that makes their counters bit-equal. *)
let test_identical_replay_async () =
  let _, r = run_profiled ~mode:Jit.Replay Programs.cache_loop in
  let _, a = run_profiled ~mode:Jit.Async Programs.cache_loop in
  Alcotest.(check (triple string string string)) "replay = async" (renderings r) (renderings a)

(* Sync and replay schedule compiles differently (inline stall vs queued
   deadline), so their profiles legitimately differ on compiling
   workloads; on a workload that never compiles they must agree. *)
let test_sync_replay_interp_only () =
  let _, s = run_profiled ~threshold:max_int ~osr:false ~mode:Jit.Sync Programs.cache_loop in
  let _, r = run_profiled ~threshold:max_int ~osr:false ~mode:Jit.Replay Programs.cache_loop in
  Alcotest.(check bool) "samples taken" true (s.Report.rp_total > 0);
  Alcotest.(check (triple string string string)) "sync = replay" (renderings s) (renderings r)

(* A literal golden: a tiny interpreter-only loop has a fully pinned
   collapsed-stack profile. If this moves, either the cost model or the
   sampling discipline changed — both are semantic changes that should
   be visible in a diff. *)
let golden_src =
  "class Main { static int main() { int s = 0; int i = 0; while (i < 100) { s = s + i; i = i \
   + 1; } return s; } }"

let test_collapsed_golden () =
  let _, rp =
    run_profiled ~interval:1024 ~iterations:1 ~threshold:max_int ~osr:false golden_src
  in
  Alcotest.(check string) "golden collapsed stacks"
    "Main.main[interp];@0 5\nMain.main[interp];@8 9\nMain.main[interp];@16 1\n"
    (Report.collapsed rp)

(* ------------------------------------------------------------------ *)
(* Heap attribution                                                    *)
(* ------------------------------------------------------------------ *)

(* Count heap-profiler records of [cls] and [kind] per run. *)
let class_count rp cls kind =
  List.fold_left
    (fun acc (r : Report.alloc_row) ->
      if r.Report.ar_cls = cls && r.Report.ar_kind = kind then acc + r.Report.ar_count else acc)
    0 rp.Report.rp_allocs

(* The ISSUE-8 cross-reference: the same bytecode site shows N
   materialized allocations under --opt none and a (near-)zero count
   under pea, with the report row carrying the PEA verdict. *)
let test_attribution_none_vs_pea () =
  let iterations = 2 and threshold = 4 in
  let _, none = run_profiled ~iterations ~threshold ~opt:Jit.O_none Programs.cache_loop in
  let _, pea = run_profiled ~iterations ~threshold ~opt:Jit.O_pea Programs.cache_loop in
  let n_none = class_count none "Key" "alloc" in
  let n_pea = class_count pea "Key" "alloc" in
  Alcotest.(check bool)
    (Printf.sprintf "unoptimized allocates freely (%d)" n_none)
    true (n_none > 100);
  Alcotest.(check bool)
    (Printf.sprintf "pea eliminates the hot-path allocations (%d < %d)" n_pea n_none)
    true (n_pea < n_none / 4);
  (* every Key row is attributed to a real bytecode site, and under pea
     the remaining (interpreter warm-up) rows carry the PEA verdict *)
  List.iter
    (fun (r : Report.alloc_row) ->
      if r.Report.ar_cls = "Key" then begin
        Alcotest.(check bool) "attributed to a method" true (r.Report.ar_method <> "<unknown>");
        Alcotest.(check bool) "attributed to a bci" true (r.Report.ar_bci >= 0)
      end)
    (none.Report.rp_allocs @ pea.Report.rp_allocs);
  Alcotest.(check bool) "pea verdict is cross-referenced onto the row" true
    (List.exists
       (fun (r : Report.alloc_row) ->
         r.Report.ar_cls = "Key"
         && match r.Report.ar_pea with
            | Some verdict -> Test_support.contains verdict "virtualized"
            | None -> false)
       pea.Report.rp_allocs)

(* A real deoptimization with a virtual object in the frame state
   produces K_remat records attributed to the deopt site's method. *)
let test_remat_attribution () =
  let r, rp =
    run_profiled ~iterations:30 ~threshold:22 ~osr:false ~opt:Jit.O_pea Programs.deopt_trap
  in
  Alcotest.(check bool) "a deopt fired" true (r.Vm.stats.Stats.s_deopts > 0);
  Alcotest.(check bool) "objects were rematerialized" true
    (r.Vm.stats.Stats.s_rematerialized > 0);
  let remat = class_count rp "P" "remat" in
  Alcotest.(check int) "every remat is attributed" r.Vm.stats.Stats.s_rematerialized remat;
  List.iter
    (fun (row : Report.alloc_row) ->
      if row.Report.ar_kind = "remat" then begin
        Alcotest.(check string) "remat site method" "Main.main" row.Report.ar_method;
        Alcotest.(check bool) "remat site bci" true (row.Report.ar_bci >= 0)
      end)
    rp.Report.rp_allocs

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* Deopt-storm the two-branch method with the limit at 2 and assert the
   armed recorder snapshots the ring to disk, and that the dump reads
   back through the parser the [mjvm report --flight] path uses. *)
let test_flight_dump_on_storm () =
  let path = Filename.temp_file "mjvm_flight" ".jsonl" in
  let saved_trace = Trace.installed () in
  let program = Link.compile_source ~require_main:false Programs.two_branch in
  let config =
    { Jit.default_config with Jit.compile_threshold = 25; osr = false; deopt_storm_limit = 2 }
  in
  let vm = Vm.create ~config program in
  let ring = Trace.create () in
  Trace.set_clock ring (fun () -> Stats.get (Vm.stats vm) Stats.cycles);
  Trace.install ring;
  Flight.arm (Flight.create ~path ring);
  Fun.protect
    ~finally:(fun () ->
      Flight.disarm ();
      (match saved_trace with Some t -> Trace.install t | None -> Trace.uninstall ());
      Sys.remove path)
    (fun () ->
      let f = Link.find_method program "C" "f" in
      let vint n = Value.Vint n and vbool b = Value.Vbool b in
      Vm.warm_up vm f [ vint 3; vbool false; vbool false ] 40;
      ignore (Vm.invoke vm f [ vint 7; vbool true; vbool false ]) (* deopt #1 *);
      ignore (Vm.invoke vm f [ vint 3; vbool false; vbool false ]) (* recompile *);
      ignore (Vm.invoke vm f [ vint 7; vbool false; vbool true ]) (* deopt #2: pins *);
      Alcotest.(check bool) "storm guard pinned" true (Vm.interpreter_pinned vm f);
      (match Flight.armed () with
      | Some fl -> Alcotest.(check int) "one dump written" 1 (Flight.dumps fl)
      | None -> Alcotest.fail "recorder disarmed itself");
      match Flight.read_file path with
      | Error msg -> Alcotest.failf "dump does not parse: %s" msg
      | Ok d ->
          Alcotest.(check string) "tagged with the trigger" "deopt-storm" d.Flight.d_reason;
          Alcotest.(check bool) "ring events captured" true (d.Flight.d_events > 0);
          Alcotest.(check int) "entries match the header count" d.Flight.d_events
            (List.length d.Flight.d_entries);
          let text = Report.flight_to_string d in
          Alcotest.(check bool) "report renders the deopts" true
            (Test_support.contains text "deopt");
          Alcotest.(check bool) "json renders the reason" true
            (Test_support.contains (Report.flight_to_json d) "\"reason\":\"deopt-storm\""))

(* ------------------------------------------------------------------ *)
(* Profiling-off parity                                                *)
(* ------------------------------------------------------------------ *)

(* Profiling must be invisible: over the shared corpus and the full
   configuration matrix, a profiled run returns the same outcome and
   bit-identical deterministic counters as an unprofiled one. This is
   the profiler twin of the trace zero-overhead gate. *)
let prop_profiling_off_parity =
  let corpus = Array.of_list Programs.corpus in
  let cells = Array.of_list (Test_support.all_cells ()) in
  let gen =
    QCheck2.Gen.(
      pair (int_bound (Array.length corpus - 1)) (int_bound (Array.length cells - 1)))
  in
  let print (pi, ci) =
    Printf.sprintf "%s under %s" (fst corpus.(pi)) (Test_support.cell_name cells.(ci))
  in
  let observe src cell =
    let program = Link.compile_source src in
    let config =
      Test_support.config_of_cell
        ~base:{ Jit.default_config with Jit.compile_threshold = 4; osr_threshold = 3 }
        cell
    in
    let vm = Vm.create ~config program in
    let r = Vm.run_main_iterations vm 6 in
    Vm.quiesce vm;
    (Test_support.outcome r, Test_support.deterministic_counters r.Vm.stats)
  in
  QCheck2.Test.make ~name:"profiling changes no result and no counter"
    ~count:(Test_env.qcheck_count 25) ~print gen
    (fun (pi, ci) ->
      let _, src = corpus.(pi) in
      let cell = cells.(ci) in
      (* off: make sure nothing is installed, whatever the suite env did *)
      let saved_cpu = Pcpu.installed () and saved_heap = Pheap.installed () in
      Pcpu.uninstall ();
      Pheap.uninstall ();
      let off =
        Fun.protect
          ~finally:(fun () ->
            (match saved_cpu with Some p -> Pcpu.install p | None -> ());
            match saved_heap with Some p -> Pheap.install p | None -> ())
          (fun () -> observe src cell)
      in
      let on = with_profilers ~interval:64 (fun _ _ -> observe src cell) in
      off = on)

let () =
  Alcotest.run "profile"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical across runs" `Quick test_identical_across_runs;
          Alcotest.test_case "byte-identical across tiers" `Quick test_identical_across_tiers;
          Alcotest.test_case "replay = async" `Quick test_identical_replay_async;
          Alcotest.test_case "sync = replay without compiles" `Quick
            test_sync_replay_interp_only;
          Alcotest.test_case "collapsed-stack golden" `Quick test_collapsed_golden;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "none vs pea at one site" `Quick test_attribution_none_vs_pea;
          Alcotest.test_case "remat attribution" `Quick test_remat_attribution;
        ] );
      ("flight", [ Alcotest.test_case "dump on deopt storm" `Quick test_flight_dump_on_storm ]);
      ( "parity",
        [ QCheck_alcotest.to_alcotest ~verbose:false prop_profiling_off_parity ] );
    ]
