(* Environment-variable overrides for the test suites, so the whole suite
   can be re-run under a forced VM configuration (see bench/run_matrix.sh):

   - MJVM_TEST_OPT = none | ea | pea   forces the optimization level;
   - MJVM_TEST_SUMMARIES = 0|off|false disables interprocedural summaries
     (any other value enables them);
   - MJVM_TEST_EXEC_TIER = direct | closure forces the execution tier;
   - MJVM_TEST_OSR = on | off forces on-stack replacement on or off;
   - MJVM_TEST_COMPILE_MODE = sync | async | replay forces when the
     compile pipeline runs relative to the mutator (background
     compilation; replay is the single-threaded deterministic twin of
     async);
   - MJVM_TEST_CHECK_LEVEL = none | phase-end | every-phase forces when
     the speculation-safety verifier runs in the JIT pipeline;
   - MJVM_TEST_ORACLE = on | off forces the bisimulation deopt oracle;
   - MJVM_TEST_STACKALLOC = on | off forces the stack-allocation tier
     (frame-bounded materializations placed in the frame's stack region
     instead of the heap) on or off;
   - MJVM_TEST_INLINING = on | off forces speculative guarded inlining
     (profile-driven dominant-receiver inlining behind exact-class
     guards) on or off;
   - MJVM_TEST_QCHECK_COUNT = N scales the qcheck case counts (the matrix
     run uses 500+; the default local counts keep the suite fast);
   - MJVM_TEST_TRACE = 1|on|true installs a global tracer for the whole
     suite, so every cell also exercises the instrumentation paths (the
     trace itself is discarded — the point is that results and counters
     must not move);
   - MJVM_TEST_PROFILE = 1|on|true installs the global sampling and heap
     profilers for the whole suite, same discipline as MJVM_TEST_TRACE:
     the profiles are discarded, the point is that profiling must not
     move any result or deterministic counter;
   - MJVM_TEST_SERVE = replay | real selects the multi-tenant serving
     harness mode for test_serving.ml: `replay` (what the @serving alias
     forces for CI) runs the deterministic single-threaded schedule;
     `real` additionally unlocks the threaded suites that run real
     worker domains and pin their reports bit-for-bit to replay's. This
     axis is read by test_serving.ml directly (see [serve_real]), not
     through [apply] — the serving harness owns its tenants' compile
     mode and OSR settings by design.

   Unset variables leave the test's own configuration untouched. *)

open Pea_vm

let () =
  match Sys.getenv_opt "MJVM_TEST_TRACE" with
  | Some ("1" | "on" | "true") -> Pea_obs.Trace.install (Pea_obs.Trace.create ())
  | Some _ | None -> ()

let () =
  match Sys.getenv_opt "MJVM_TEST_PROFILE" with
  | Some ("1" | "on" | "true") ->
      Pea_obs.Profile_cpu.install (Pea_obs.Profile_cpu.create ());
      Pea_obs.Profile_heap.install (Pea_obs.Profile_heap.create ())
  | Some _ | None -> ()

(* Tests that compare optimization levels against each other are
   meaningless when the level is forced from the outside. *)
let opt_forced () = Sys.getenv_opt "MJVM_TEST_OPT" <> None

(* Serving-harness mode: whether the real-domain suites are unlocked. *)
let serve_real () =
  match Sys.getenv_opt "MJVM_TEST_SERVE" with Some "real" -> true | Some _ | None -> false

(* qcheck case count: [default] unless MJVM_TEST_QCHECK_COUNT is set. *)
let qcheck_count default =
  match Sys.getenv_opt "MJVM_TEST_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let apply (cfg : Jit.config) =
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_OPT" with
    | Some "none" -> { cfg with Jit.opt = Jit.O_none }
    | Some "ea" -> { cfg with Jit.opt = Jit.O_ea }
    | Some "pea" -> { cfg with Jit.opt = Jit.O_pea }
    | Some _ | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_SUMMARIES" with
    | Some ("0" | "off" | "false") -> { cfg with Jit.summaries = false }
    | Some _ -> { cfg with Jit.summaries = true }
    | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_EXEC_TIER" with
    | Some "direct" -> { cfg with Jit.exec_tier = Jit.Direct }
    | Some "closure" -> { cfg with Jit.exec_tier = Jit.Closure }
    | Some _ | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_OSR" with
    | Some ("on" | "1" | "true") -> { cfg with Jit.osr = true }
    | Some ("off" | "0" | "false") -> { cfg with Jit.osr = false }
    | Some _ | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_COMPILE_MODE" with
    | Some "sync" -> { cfg with Jit.compile_mode = Jit.Sync }
    | Some "async" -> { cfg with Jit.compile_mode = Jit.Async }
    | Some "replay" -> { cfg with Jit.compile_mode = Jit.Replay }
    | Some _ | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_CHECK_LEVEL" with
    | Some s -> (
        match Pea_analysis.Spec_check.level_of_string s with
        | Some level -> { cfg with Jit.check_level = level }
        | None -> cfg)
    | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_INLINING" with
    | Some ("on" | "1" | "true") -> { cfg with Jit.inlining = true }
    | Some ("off" | "0" | "false") -> { cfg with Jit.inlining = false }
    | Some _ | None -> cfg
  in
  let cfg =
    match Sys.getenv_opt "MJVM_TEST_ORACLE" with
    | Some ("on" | "1" | "true") -> { cfg with Jit.oracle = true }
    | Some ("off" | "0" | "false") -> { cfg with Jit.oracle = false }
    | Some _ | None -> cfg
  in
  match Sys.getenv_opt "MJVM_TEST_STACKALLOC" with
  | Some ("on" | "1" | "true") -> { cfg with Jit.stackalloc = true }
  | Some ("off" | "0" | "false") -> { cfg with Jit.stackalloc = false }
  | Some _ | None -> cfg
