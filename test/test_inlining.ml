(* Speculative guarded inlining ([Jit.config.inlining]): profile-driven
   inlining of the dominant receiver at a virtual call site behind an
   exact-class guard whose miss edge deopts to the *pre-call* state.

   The suite drives the full lifecycle on a hierarchy CHA cannot
   devirtualize: speculation from the receiver profile, PEA across the
   inlined boundary (allocations in both the caller and the spliced
   callee stay virtual), a forced receiver miss whose deopt
   rematerializes virtual objects in BOTH frames of the chained state —
   cross-checked by the bisimulation oracle — and the per-site blacklist
   that turns a missed site back into a dispatched call on
   recompilation. *)

open Pea_bytecode
open Pea_rt
open Pea_vm

let vint n = Value.Vint n

let as_int = function
  | Some (Value.Vint n) -> n
  | other ->
      Alcotest.failf "expected an int result, got %s"
        (match other with None -> "void" | Some v -> Value.string_of_value v)

(* The env axes still vary tier / OSR / compile mode / check level /
   oracle; opt and the inlining bit are pinned because the assertions
   below are about the guarded-inlining pipeline itself. *)
let config () =
  {
    (Test_env.apply { Jit.default_config with Jit.compile_threshold = 25 }) with
    Jit.opt = Jit.O_pea;
    Jit.inlining = true;
    Jit.oracle = true;
  }

let setup ?(config = config ()) src =
  let program = Link.compile_source ~require_main:false src in
  (program, Vm.create ~config program)

(* [Shape.area] is overridden twice, so CHA declines and only the
   receiver profile can bind the call. [inner] allocates across the
   guarded call, [outer] allocates across the (direct) inline of
   [inner]: at the guard's deopt both boxes are virtual, one per frame. *)
let src =
  "class Shape { int area() { return 1; } }\n\
   class Square extends Shape { int s; int area() { return s * s; } }\n\
   class Circle extends Shape { int r; int area() { return 3 * r; } }\n\
   class Box { int v; }\n\
   class C {\n\
  \  static Shape mkSquare(int s) { Square q = new Square(); q.s = s; return q; }\n\
  \  static Shape mkCircle(int r) { Circle c = new Circle(); c.r = r; return c; }\n\
  \  static int inner(Shape s, int x) {\n\
  \    Box b = new Box();\n\
  \    b.v = x + 1;\n\
  \    int a = s.area();\n\
  \    return a + b.v;\n\
  \  }\n\
  \  static int outer(Shape s, int x) {\n\
  \    Box o = new Box();\n\
  \    o.v = x;\n\
  \    int r = C.inner(s, x);\n\
  \    return r + o.v;\n\
  \  }\n\
   }"

(* outer(square(4), x) = (16 + x + 1) + x; outer(circle(5), x) = (15 + x + 1) + x *)
let square_result x = 17 + (2 * x)

let circle_result x = 16 + (2 * x)

let receivers program vm =
  let sq = Option.get (Vm.invoke vm (Link.find_method program "C" "mkSquare") [ vint 4 ]) in
  let ci = Option.get (Vm.invoke vm (Link.find_method program "C" "mkCircle") [ vint 5 ]) in
  (sq, ci)

let has_guard g =
  let found = ref false in
  Pea_ir.Graph.iter_blocks
    (fun b ->
      List.iter
        (fun (n : Pea_ir.Node.t) ->
          match n.Pea_ir.Node.op with Pea_ir.Node.Has_class _ -> found := true | _ -> ())
        (Pea_ir.Graph.instr_list b))
    g;
  !found

(* ------------------------------------------------------------------ *)
(* Speculation from the receiver profile                               *)
(* ------------------------------------------------------------------ *)

let test_speculative_inline () =
  let program, vm = setup src in
  let outer = Link.find_method program "C" "outer" in
  let sq, _ = receivers program vm in
  Vm.warm_up vm outer [ sq; vint 10 ] 50;
  let g =
    match Vm.compiled_graph vm outer with
    | Some g -> g
    | None -> Alcotest.fail "outer not compiled"
  in
  Alcotest.(check bool) "graph carries an exact-class guard" true (has_guard g);
  let s = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check bool) "speculative inlines counted" true (s.Stats.s_speculative_inlines >= 1);
  Alcotest.(check int) "hot receiver result" (square_result 10)
    (as_int (Vm.invoke vm outer [ sq; vint 10 ]))

(* ------------------------------------------------------------------ *)
(* Guard miss: pre-call deopt, virtual objects in both frames          *)
(* ------------------------------------------------------------------ *)

let test_guard_miss_remat_both_frames () =
  let program, vm = setup src in
  let outer = Link.find_method program "C" "outer" in
  let sq, ci = receivers program vm in
  Vm.warm_up vm outer [ sq; vint 10 ] 50;
  Alcotest.(check bool) "compiled" true (Vm.compiled_graph vm outer <> None);
  let s0 = Stats.snapshot (Vm.stats vm) in
  (* the unexpected receiver: the guard misses, the deopt resumes the
     interpreter *before* the dispatch, and both boxes — one virtual in
     the spliced callee's frame, one in the caller's — rematerialize.
     The oracle replays the whole activation against a shadow
     interpreter; a divergence would escape as an exception here. *)
  Alcotest.(check int) "miss result under oracle" (circle_result 10)
    (as_int (Vm.invoke vm outer [ ci; vint 10 ]));
  let s1 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "one deopt" 1 (s1.Stats.s_deopts - s0.Stats.s_deopts);
  Alcotest.(check int) "counted as a guard deopt" 1 (s1.Stats.s_guard_deopts - s0.Stats.s_guard_deopts);
  Alcotest.(check bool) "virtual objects rematerialized in both frames" true
    (s1.Stats.s_rematerialized - s0.Stats.s_rematerialized >= 2);
  (* the deopt resumed at the dispatch itself: the interpreter re-executed
     it with the actual receiver, so results stay right afterwards too *)
  Alcotest.(check int) "square still right after the miss" (square_result 3)
    (as_int (Vm.invoke vm outer [ sq; vint 3 ]))

(* ------------------------------------------------------------------ *)
(* Blacklist: a missed site stops being speculated on                  *)
(* ------------------------------------------------------------------ *)

let test_blacklist_stops_respeculation () =
  let program, vm = setup src in
  let outer = Link.find_method program "C" "outer" in
  let sq, ci = receivers program vm in
  Vm.warm_up vm outer [ sq; vint 10 ] 50;
  (* one miss: deopt, site blacklisted, code invalidated *)
  Alcotest.(check int) "miss result" (circle_result 10) (as_int (Vm.invoke vm outer [ ci; vint 10 ]));
  (* re-warm: the recompile consults the blacklist and falls back to a
     dispatched call (summaries still apply to it) instead of deopt-storming *)
  Vm.warm_up vm outer [ sq; vint 10 ] 50;
  let g =
    match Vm.compiled_graph vm outer with
    | Some g -> g
    | None -> Alcotest.fail "outer not recompiled"
  in
  Alcotest.(check bool) "no guard in the recompiled graph" false (has_guard g);
  let s0 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check bool) "blacklist skip counted" true (s0.Stats.s_inline_blacklist_skips >= 1);
  (* megamorphic traffic through the recompiled code: right answers, no
     further guard deopts *)
  Alcotest.(check int) "circle" (circle_result 7) (as_int (Vm.invoke vm outer [ ci; vint 7 ]));
  Alcotest.(check int) "square" (square_result 7) (as_int (Vm.invoke vm outer [ sq; vint 7 ]));
  let s1 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "no further guard deopts" 0 (s1.Stats.s_guard_deopts - s0.Stats.s_guard_deopts)

(* ------------------------------------------------------------------ *)
(* The config bit really gates the guarded mode                        *)
(* ------------------------------------------------------------------ *)

let test_inlining_off () =
  let config = { (config ()) with Jit.inlining = false } in
  let program, vm = setup ~config src in
  let outer = Link.find_method program "C" "outer" in
  let sq, ci = receivers program vm in
  Vm.warm_up vm outer [ sq; vint 10 ] 50;
  (match Vm.compiled_graph vm outer with
  | Some g -> Alcotest.(check bool) "no guard with inlining off" false (has_guard g)
  | None -> Alcotest.fail "outer not compiled");
  let s = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "no speculative inlines" 0 s.Stats.s_speculative_inlines;
  Alcotest.(check int) "circle without guards" (circle_result 10)
    (as_int (Vm.invoke vm outer [ ci; vint 10 ]));
  Alcotest.(check int) "square without guards" (square_result 10)
    (as_int (Vm.invoke vm outer [ sq; vint 10 ]));
  let s1 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "no guard deopts ever" 0 s1.Stats.s_guard_deopts

(* ------------------------------------------------------------------ *)
(* explain: inlined-allocation provenance                              *)
(* ------------------------------------------------------------------ *)

let test_explain_renders_origin () =
  let program = Link.compile_source ~require_main:false src in
  let outer = Link.find_method program "C" "outer" in
  let report = Explain.to_string (Explain.analyze program outer) in
  (* [inner] direct-inlines into [outer]; its Box site must be reported
     with the (caller, callee, call-site bci) chain it crossed *)
  Alcotest.(check bool) "origin chain rendered" true (Test_support.contains report "inlined:");
  Alcotest.(check bool) "chain names the boundary" true
    (Test_support.contains report "C.outer -> C.inner")

let () =
  Alcotest.run "inlining"
    [
      ( "speculative",
        [
          Alcotest.test_case "profile-driven guarded inline" `Quick test_speculative_inline;
          Alcotest.test_case "guard miss remats both frames" `Quick
            test_guard_miss_remat_both_frames;
          Alcotest.test_case "blacklist stops respeculation" `Quick
            test_blacklist_stops_respeculation;
          Alcotest.test_case "inlining bit gates guards" `Quick test_inlining_off;
          Alcotest.test_case "explain renders inline origin" `Quick test_explain_renders_origin;
        ] );
    ]
