(* Unit tests for the runtime substrate: heap accounting, per-class
   breakdown, stats snapshots/diffs, the cost model, and value helpers. *)

open Pea_bytecode
open Pea_rt

let make_heap () =
  let stats = Stats.create () in
  (stats, Heap.create stats)

let classes () =
  let program =
    Link.compile_source ~require_main:false
      "class Small { int a; }\nclass Big { int a; int b; Object o; Big[] more; }"
  in
  (Link.find_class program "Small", Link.find_class program "Big")

let test_object_accounting () =
  let stats, heap = make_heap () in
  let small, big = classes () in
  let o1 = Heap.alloc_object heap small in
  let o2 = Heap.alloc_object heap big in
  Alcotest.(check int) "two allocations" 2 (Stats.get stats Stats.allocations);
  (* 16 + 8*1 and 16 + 8*4 *)
  Alcotest.(check int) "bytes" (24 + 48) (Stats.get stats Stats.allocated_bytes);
  Alcotest.(check bool) "distinct identities" true (o1.Value.o_id <> o2.Value.o_id);
  Alcotest.(check int) "small layout" 1 (Array.length o1.Value.o_fields);
  Alcotest.(check int) "big layout" 4 (Array.length o2.Value.o_fields)

let test_array_accounting () =
  let stats, heap = make_heap () in
  ignore (Heap.alloc_array heap Pea_mjava.Ast.Tint 10); (* 16 + 40 *)
  ignore (Heap.alloc_array heap (Pea_mjava.Ast.Tclass "Object") 10); (* 16 + 80 *)
  Alcotest.(check int) "bytes" (56 + 96) (Stats.get stats Stats.allocated_bytes);
  match Heap.alloc_array heap Pea_mjava.Ast.Tint (-1) with
  | exception Heap.Negative_array_size _ -> ()
  | _ -> Alcotest.fail "negative size accepted"

let test_class_breakdown () =
  let _, heap = make_heap () in
  let small, big = classes () in
  ignore (Heap.alloc_object heap small);
  ignore (Heap.alloc_object heap small);
  ignore (Heap.alloc_object heap big);
  ignore (Heap.alloc_array heap Pea_mjava.Ast.Tint 100);
  let breakdown = Heap.class_breakdown heap in
  Alcotest.(check int) "three entries" 3 (List.length breakdown);
  (* sorted by bytes: the int[] dominates *)
  (match breakdown with
  | ("int[]", 1, 416) :: _ -> ()
  | (n, c, b) :: _ -> Alcotest.failf "unexpected top entry %s/%d/%d" n c b
  | [] -> Alcotest.fail "empty breakdown");
  let small_entry = List.find (fun (n, _, _) -> n = "Small") breakdown in
  (match small_entry with
  | _, 2, 48 -> ()
  | _, c, b -> Alcotest.failf "Small entry wrong: %d/%d" c b)

let test_monitor_accounting () =
  let stats, heap = make_heap () in
  let small, _ = classes () in
  let o = Value.Vobj (Heap.alloc_object heap small) in
  Heap.monitor_enter heap o;
  Heap.monitor_enter heap o;
  Heap.monitor_exit heap o;
  Heap.monitor_exit heap o;
  Alcotest.(check int) "four monitor ops" 4 (Stats.get stats Stats.monitor_ops);
  match Heap.monitor_exit heap o with
  | exception Heap.Unbalanced_monitor _ -> ()
  | _ -> Alcotest.fail "unbalanced exit accepted"

let test_stats_snapshot_diff () =
  let stats = Stats.create () in
  Stats.set stats Stats.allocations 5;
  Stats.set stats Stats.cycles 100;
  let s1 = Stats.snapshot stats in
  Stats.set stats Stats.allocations 12;
  Stats.set stats Stats.cycles 250;
  let s2 = Stats.snapshot stats in
  let d = Stats.diff s2 s1 in
  Alcotest.(check int) "alloc delta" 7 d.Stats.s_allocations;
  Alcotest.(check int) "cycle delta" 150 d.Stats.s_cycles;
  Stats.reset stats;
  Alcotest.(check int) "reset" 0 (Stats.get stats Stats.allocations)

let test_cost_model_shape () =
  (* allocation cost grows with size; compiled ops are cheaper than
     interpreter dispatch; deopt dwarfs both *)
  Alcotest.(check bool) "alloc grows" true (Cost.alloc_cost 400 > Cost.alloc_cost 24);
  Alcotest.(check bool) "compiled < interp" true (Cost.compiled_op < Cost.interp_dispatch);
  Alcotest.(check bool) "deopt is expensive" true
    (Cost.deopt > 10 * Cost.invoke && Cost.deopt > Cost.alloc_cost 64)

let test_value_equality () =
  let _, heap = make_heap () in
  let small, _ = classes () in
  let a = Value.Vobj (Heap.alloc_object heap small) in
  let b = Value.Vobj (Heap.alloc_object heap small) in
  Alcotest.(check bool) "identity" true (Value.equal_value a a);
  Alcotest.(check bool) "distinct objects differ" false (Value.equal_value a b);
  Alcotest.(check bool) "null = null" true (Value.equal_value Value.Vnull Value.Vnull);
  Alcotest.(check bool) "null <> object" false (Value.equal_value Value.Vnull a);
  Alcotest.(check bool) "ints by value" true (Value.equal_value (Value.Vint 3) (Value.Vint 3))

let test_default_values () =
  Alcotest.(check bool) "int" true (Value.default_value Pea_mjava.Ast.Tint = Value.Vint 0);
  Alcotest.(check bool) "bool" true (Value.default_value Pea_mjava.Ast.Tbool = Value.Vbool false);
  Alcotest.(check bool) "ref" true
    (Value.default_value (Pea_mjava.Ast.Tclass "X") = Value.Vnull)

let () =
  Alcotest.run "rt"
    [
      ( "heap",
        [
          Alcotest.test_case "object accounting" `Quick test_object_accounting;
          Alcotest.test_case "array accounting" `Quick test_array_accounting;
          Alcotest.test_case "class breakdown" `Quick test_class_breakdown;
          Alcotest.test_case "monitor accounting" `Quick test_monitor_accounting;
        ] );
      ( "stats",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_stats_snapshot_diff;
          Alcotest.test_case "cost model shape" `Quick test_cost_model_shape;
        ] );
      ( "values",
        [
          Alcotest.test_case "equality" `Quick test_value_equality;
          Alcotest.test_case "defaults" `Quick test_default_values;
        ] );
    ]
