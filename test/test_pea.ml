(* White-box tests of partial escape analysis, following the paper:

   - §5.2 / Figure 4: effects of nodes on virtual objects (allocation,
     store, load, monitorenter/exit, store/load of virtual into virtual);
   - Figure 5: stores on escaped objects;
   - §5.3 / Figure 6: the MergeProcessor (alias intersection, merging of
     escaped objects, phi aliasing);
   - §4 / Listings 4-6: the running example — the allocation moves into
     the branch where the object escapes;
   - folding of reference equality and type checks on virtual objects. *)

open Pea_bytecode
open Pea_ir
open Pea_core

let graph_of src cls name ~inline =
  let program = Link.compile_source ~require_main:false src in
  let m = Link.find_method program cls name in
  let g = Builder.build m in
  if inline then ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  ignore (Pea_opt.Canonicalize.run g);
  ignore (Pea_opt.Gvn.run g);
  Check.check_exn g;
  (program, g)

let run_pea g =
  let g', st = Pea.run g in
  ignore (Pea_opt.Canonicalize.run g');
  Check.check_exn g';
  (g', st)

let count_ops g p =
  let n = ref 0 in
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) then begin
        List.iter (fun (x : Node.t) -> if p x.Node.op then incr n) b.Graph.phis;
        Pea_support.Dyn_array.iter (fun (x : Node.t) -> if p x.Node.op then incr n) b.Graph.instrs
      end)
    g;
  !n

let allocs g =
  count_ops g (function Node.New _ | Node.Alloc _ -> true | _ -> false)

let monitors g =
  count_ops g (function Node.Monitor_enter _ | Node.Monitor_exit _ -> true | _ -> false)

let field_ops g =
  count_ops g (function Node.Load_field _ | Node.Store_field _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Figure 4: operations on virtual objects                             *)
(* ------------------------------------------------------------------ *)

(* (a)+(b): allocation, stores and loads on a purely local object are all
   removed *)
let test_fig4_scalar_replacement () =
  let _, g =
    graph_of
      "class P { int x; int y; }\n\
       class C { static int f(int a) { P p = new P(); p.x = a; p.y = a * 2; return p.x + p.y; } }"
      "C" "f" ~inline:false
  in
  Alcotest.(check int) "one allocation before" 1 (allocs g);
  let g', st = run_pea g in
  Alcotest.(check int) "no allocation after" 0 (allocs g');
  Alcotest.(check int) "no field ops after" 0 (field_ops g');
  Alcotest.(check int) "virtualized" 1 st.Pea.virtualized_allocs;
  Alcotest.(check int) "loads removed" 2 st.Pea.removed_loads;
  Alcotest.(check int) "stores removed" 2 st.Pea.removed_stores;
  Alcotest.(check int) "no materialization" 0 st.Pea.materializations

(* (c)+(d): monitorenter/monitorexit on a virtual object are elided *)
let test_fig4_lock_elision () =
  let _, g =
    graph_of
      "class P { int x; }\n\
       class C { static int f(int a) { P p = new P(); synchronized (p) { p.x = a; } return p.x; } }"
      "C" "f" ~inline:false
  in
  Alcotest.(check int) "monitors before" 2 (monitors g);
  let g', st = run_pea g in
  Alcotest.(check int) "monitors after" 0 (monitors g');
  Alcotest.(check int) "removed monitor ops" 2 st.Pea.removed_monitor_ops;
  Alcotest.(check int) "no allocation after" 0 (allocs g')

(* (e)+(f): a virtual object stored into another virtual object keeps its
   Id; loading it back yields the same virtual object *)
let test_fig4_virtual_into_virtual () =
  let _, g =
    graph_of
      "class Inner { int v; }\n\
       class Outer { Inner inner; }\n\
       class C {\n\
      \  static int f(int a) {\n\
      \    Inner i = new Inner(); i.v = a;\n\
      \    Outer o = new Outer(); o.inner = i;\n\
      \    Inner j = o.inner;\n\
      \    return j.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  Alcotest.(check int) "both allocations removed" 0 (allocs g');
  Alcotest.(check int) "virtualized" 2 st.Pea.virtualized_allocs;
  Alcotest.(check int) "no materialization" 0 st.Pea.materializations

(* Figure 5: a store into an escaped object materializes the stored
   (virtual) value *)
let test_fig5_store_into_escaped () =
  let _, g =
    graph_of
      "class P { int v; P other; }\n\
       class C {\n\
      \  static P sink;\n\
      \  static void f(int a) {\n\
      \    P escaped = new P();\n\
      \    C.sink = escaped;\n\
      \    P local = new P();\n\
      \    local.v = a;\n\
      \    escaped.other = local;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  (* both objects end up allocated: one at the static store, the other
     when stored into the escaped one *)
  Alcotest.(check int) "two allocations" 2 (allocs g');
  Alcotest.(check int) "two materializations" 2 st.Pea.materializations

(* ------------------------------------------------------------------ *)
(* Listings 4-6: the running example                                   *)
(* ------------------------------------------------------------------ *)

let cache_src = Programs.cache

let test_listing6_partial_escape () =
  let _, g = graph_of cache_src "Cache" "getValue" ~inline:true in
  (* after inlining, the method contains the Key allocation and the
     synchronized equals body *)
  Alcotest.(check int) "one allocation before" 1 (allocs g);
  Alcotest.(check bool) "monitors present before" true (monitors g > 0);
  let g', st = run_pea g in
  (* the allocation is still present (the object escapes into cacheKey),
     but only on the miss path: exactly one materialization, and the New
     node is gone *)
  Alcotest.(check int) "one allocation site after" 1 (allocs g');
  Alcotest.(check int) "virtualized" 1 st.Pea.virtualized_allocs;
  Alcotest.(check int) "one materialization" 1 st.Pea.materializations;
  (* all monitor operations are gone: the object is virtual in the
     synchronized region (Listing 6 has no synchronized at all) *)
  Alcotest.(check int) "no monitors after" 0 (monitors g');
  (* the materialization must NOT be in a block that dominates the return
     of the hit path: check that the entry block contains no allocation *)
  let entry_allocs = ref 0 in
  Pea_support.Dyn_array.iter
    (fun (n : Node.t) ->
      match n.Node.op with Node.New _ | Node.Alloc _ -> incr entry_allocs | _ -> ())
    (Graph.block g' Graph.entry_id).Graph.instrs;
  Alcotest.(check int) "no allocation on the common path" 0 !entry_allocs

(* The whole-method EA baseline cannot remove the allocation at all. *)
let test_listing4_baseline_ea_fails () =
  let _, g = graph_of cache_src "Cache" "getValue" ~inline:true in
  let g', st = Escape.run g in
  ignore (Pea_opt.Canonicalize.run g');
  Check.check_exn g';
  Alcotest.(check int) "allocation survives" 1 (allocs g');
  Alcotest.(check int) "nothing virtualized" 0 st.Pea.virtualized_allocs;
  (* and the monitors survive too *)
  Alcotest.(check bool) "monitors survive" true (monitors g' > 0)

(* In the fully local variant (Listing 1, no escape), whole-method EA and
   PEA both remove everything *)
let local_cache_src = Programs.local_cache

let test_listing1_full_ea () =
  let _, g = graph_of local_cache_src "Cache" "getValue" ~inline:true in
  let ea_g, _ = Escape.run g in
  ignore (Pea_opt.Canonicalize.run ea_g);
  Check.check_exn ea_g;
  Alcotest.(check int) "EA removes the allocation" 0 (allocs ea_g);
  Alcotest.(check int) "EA removes the monitors" 0 (monitors ea_g);
  let _, g2 = graph_of local_cache_src "Cache" "getValue" ~inline:true in
  let pea_g, _ = run_pea g2 in
  Alcotest.(check int) "PEA removes the allocation" 0 (allocs pea_g);
  Alcotest.(check int) "PEA removes the monitors" 0 (monitors pea_g)

(* ------------------------------------------------------------------ *)
(* Figure 6: the MergeProcessor                                        *)
(* ------------------------------------------------------------------ *)

(* (a) field-value merging: same object, different field values on the two
   paths -> one phi, allocation still removed *)
let test_fig6_field_phi () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static int f(boolean c) {\n\
      \    P p = new P();\n\
      \    if (c) { p.v = 1; } else { p.v = 2; }\n\
      \    return p.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  Alcotest.(check int) "allocation removed" 0 (allocs g');
  Alcotest.(check int) "no materialization" 0 st.Pea.materializations;
  (* the merged field value is a phi *)
  Alcotest.(check bool) "has a phi" true (count_ops g' (function Node.Phi _ -> true | _ -> false) > 0)

(* (b) merging of escaped objects: the object escapes on both paths at
   different points; after the merge the materialized values meet in a
   phi *)
let test_fig6_escaped_merge () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static P a;\n\
      \  static P b;\n\
      \  static int f(boolean c) {\n\
      \    P p = new P();\n\
      \    if (c) { C.a = p; } else { C.b = p; }\n\
      \    return p.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  (* materialized once per branch *)
  Alcotest.(check int) "two materializations" 2 st.Pea.materializations;
  Alcotest.(check int) "two allocation sites" 2 (allocs g')

(* mixed: virtual on one path, escaped on the other -> materialize at the
   virtual predecessor *)
let test_fig6_mixed_merge () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static P sink;\n\
      \  static int f(boolean c) {\n\
      \    P p = new P();\n\
      \    if (c) { C.sink = p; }\n\
      \    return p.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  (* escape in the branch + materialization at the other merge
     predecessor *)
  Alcotest.(check int) "two materializations" 2 st.Pea.materializations;
  Alcotest.(check int) "allocation moved into branches" 2 (allocs g');
  ignore g'

(* (c) phi aliasing: both branches produce the same virtual object -> the
   phi becomes an alias and everything stays virtual *)
let test_fig6_phi_alias () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static int f(boolean c) {\n\
      \    P p = new P();\n\
      \    P q = null;\n\
      \    if (c) { q = p; p.v = 1; } else { q = p; p.v = 2; }\n\
      \    return q.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  Alcotest.(check int) "allocation removed" 0 (allocs g');
  Alcotest.(check int) "no materialization" 0 st.Pea.materializations

(* different objects flowing into a phi force materialization (Fig 6,
   second bullet of the phi rules) *)
let test_fig6_phi_different_objects () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static int f(boolean c) {\n\
      \    P q = null;\n\
      \    if (c) { q = new P(); q.v = 1; } else { q = new P(); q.v = 2; }\n\
      \    return q.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  (* both allocations materialize at their predecessors *)
  Alcotest.(check int) "two materializations" 2 st.Pea.materializations;
  Alcotest.(check int) "two allocations survive" 2 (allocs g');
  ignore st

(* ------------------------------------------------------------------ *)
(* Folding of checks on virtual objects                                *)
(* ------------------------------------------------------------------ *)

let test_refcmp_folding () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static int f(P external) {\n\
      \    P a = new P();\n\
      \    P b = new P();\n\
      \    int acc = 0;\n\
      \    if (a == a) acc = acc + 1;\n\
      \    if (a != b) acc = acc + 2;\n\
      \    if (a != external) acc = acc + 4;\n\
      \    if (a != null) acc = acc + 8;\n\
      \    return acc;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  ignore (Pea_opt.Canonicalize.run g');
  Alcotest.(check int) "allocations removed" 0 (allocs g');
  (* [a == a] is already folded by canonicalization before PEA runs, so
     PEA folds the remaining three *)
  Alcotest.(check bool) "checks folded" true (st.Pea.folded_checks >= 3);
  (* after folding and canonicalization the method is a constant return *)
  let refcmps = count_ops g' (function Node.RefCmp _ -> true | _ -> false) in
  Alcotest.(check int) "no reference comparisons left" 0 refcmps

let test_instanceof_checkcast_folding () =
  let _, g =
    graph_of
      "class A { int v; }\n\
       class B extends A { }\n\
       class C {\n\
      \  static int f() {\n\
      \    A a = new B();\n\
      \    int acc = 0;\n\
      \    if (a instanceof B) acc = acc + 1;\n\
      \    if (a instanceof A) acc = acc + 2;\n\
      \    B b = (B) a;\n\
      \    b.v = 4;\n\
      \    return acc + b.v;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  ignore (Pea_opt.Canonicalize.run g');
  Alcotest.(check int) "allocation removed" 0 (allocs g');
  Alcotest.(check bool) "checks folded" true (st.Pea.folded_checks >= 3);
  Alcotest.(check int) "no instanceof left" 0
    (count_ops g' (function Node.Instance_of _ | Node.Check_cast _ -> true | _ -> false))

(* cyclic virtual structures materialize correctly with patch stores *)
let test_cyclic_materialization () =
  let _, g =
    graph_of
      "class Cell { Cell other; int v; }\n\
       class C {\n\
      \  static Cell sink;\n\
      \  static void f() {\n\
      \    Cell a = new Cell(); Cell b = new Cell();\n\
      \    a.other = b; b.other = a;\n\
      \    a.v = 1; b.v = 2;\n\
      \    C.sink = a;\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', st = run_pea g in
  Alcotest.(check int) "both materialized" 2 st.Pea.materializations;
  (* at least one patch store survives to close the cycle *)
  Alcotest.(check bool) "patch store present" true (field_ops g' >= 1)

(* materializing a locked virtual object re-locks it *)
let test_materialize_relock () =
  let _, g =
    graph_of
      "class P { int v; }\n\
       class C {\n\
      \  static P sink;\n\
      \  static void f() {\n\
      \    P p = new P();\n\
      \    synchronized (p) {\n\
      \      C.sink = p;\n\
      \      p.v = 1;\n\
      \    }\n\
      \  }\n\
       }"
      "C" "f" ~inline:false
  in
  let g', _ = run_pea g in
  (* monitorenter re-emitted at materialization + the original exit *)
  let enters = count_ops g' (function Node.Monitor_enter _ -> true | _ -> false) in
  let exits = count_ops g' (function Node.Monitor_exit _ -> true | _ -> false) in
  Alcotest.(check int) "one enter" 1 enters;
  Alcotest.(check int) "one exit" 1 exits

let () =
  Alcotest.run "pea"
    [
      ( "figure4",
        [
          Alcotest.test_case "scalar replacement (a,b)" `Quick test_fig4_scalar_replacement;
          Alcotest.test_case "lock elision (c,d)" `Quick test_fig4_lock_elision;
          Alcotest.test_case "virtual into virtual (e,f)" `Quick test_fig4_virtual_into_virtual;
          Alcotest.test_case "store into escaped (fig 5)" `Quick test_fig5_store_into_escaped;
        ] );
      ( "listings",
        [
          Alcotest.test_case "listing 6: partial escape" `Quick test_listing6_partial_escape;
          Alcotest.test_case "listing 4: baseline EA fails" `Quick test_listing4_baseline_ea_fails;
          Alcotest.test_case "listing 1: full EA works" `Quick test_listing1_full_ea;
        ] );
      ( "figure6",
        [
          Alcotest.test_case "field phi" `Quick test_fig6_field_phi;
          Alcotest.test_case "escaped merge" `Quick test_fig6_escaped_merge;
          Alcotest.test_case "mixed merge" `Quick test_fig6_mixed_merge;
          Alcotest.test_case "phi alias" `Quick test_fig6_phi_alias;
          Alcotest.test_case "phi different objects" `Quick test_fig6_phi_different_objects;
        ] );
      ( "folding",
        [
          Alcotest.test_case "refcmp" `Quick test_refcmp_folding;
          Alcotest.test_case "instanceof/cast" `Quick test_instanceof_checkcast_folding;
        ] );
      ( "materialization",
        [
          Alcotest.test_case "cyclic" `Quick test_cyclic_materialization;
          Alcotest.test_case "relock" `Quick test_materialize_relock;
        ] );
    ]
