(* Closure execution tier tests: inline-cache behavior (monomorphic hit,
   polymorphic rebias, deopt invalidation), register-file pooling, and
   bit-for-bit cost-model parity with the direct tier. *)

open Pea_bytecode
open Pea_rt
open Pea_vm

let vint n = Value.Vint n

let vbool b = Value.Vbool b

let as_int = function
  | Some (Value.Vint n) -> n
  | other ->
      Alcotest.failf "expected an int result, got %s"
        (match other with None -> "void" | Some v -> Value.string_of_value v)

(* Inlining is off so the virtual calls survive to the IR (an inlined call
   has no dispatch and would never exercise the inline cache); escape
   analysis is off so receivers are real heap objects. *)
let ic_config =
  {
    Jit.default_config with
    Jit.opt = Jit.O_none;
    inline = false;
    compile_threshold = 5;
    exec_tier = Jit.Closure;
  }

let setup ?(config = ic_config) src =
  let program = Link.compile_source ~require_main:false src in
  (program, Vm.create ~config program)

let ic_src = Programs.ic_dispatch

(* A single receiver class: the cache is seeded from the interpreter's
   receiver profile, so once compiled, every dispatch is a fast-path hit —
   not even a first-call miss. *)
let test_ic_monomorphic () =
  let program, vm = setup ic_src in
  let f = Link.find_method program "C" "f" in
  let a = Option.get (Vm.invoke vm (Link.find_method program "C" "mkA") [ vint 7 ]) in
  Vm.warm_up vm f [ a; vint 10 ] 10;
  let before = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check bool) "closure-compiled" true (before.Stats.s_closure_compiled_methods >= 1);
  Alcotest.(check int) "monomorphic result" 70 (as_int (Vm.invoke vm f [ a; vint 10 ]));
  let after = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check bool) "ic hits" true (after.Stats.s_ic_hits - before.Stats.s_ic_hits >= 10);
  Alcotest.(check int) "no ic misses for the profiled receiver" 0
    (after.Stats.s_ic_misses - before.Stats.s_ic_misses)

(* Alternating receiver classes: each flip misses once and rebiases the
   cache, so the calls within one invocation after the flip hit again.
   Results must reflect the dynamic type throughout. *)
let test_ic_polymorphic_rebias () =
  let program, vm = setup ic_src in
  let f = Link.find_method program "C" "f" in
  let a = Option.get (Vm.invoke vm (Link.find_method program "C" "mkA") [ vint 3 ]) in
  let b = Option.get (Vm.invoke vm (Link.find_method program "C" "mkB") [ vint 3 ]) in
  Vm.warm_up vm f [ a; vint 10 ] 10;
  let before = Stats.snapshot (Vm.stats vm) in
  (* B.get doubles: 10 * 3 * 2 *)
  Alcotest.(check int) "B receiver" 60 (as_int (Vm.invoke vm f [ b; vint 10 ]));
  Alcotest.(check int) "A receiver" 30 (as_int (Vm.invoke vm f [ a; vint 10 ]));
  Alcotest.(check int) "B again" 60 (as_int (Vm.invoke vm f [ b; vint 10 ]));
  let after = Stats.snapshot (Vm.stats vm) in
  let misses = after.Stats.s_ic_misses - before.Stats.s_ic_misses in
  let hits = after.Stats.s_ic_hits - before.Stats.s_ic_hits in
  (* one miss per receiver flip (3 flips), the other 27 dispatches hit on
     the rebiased cache *)
  Alcotest.(check int) "one miss per receiver flip" 3 misses;
  Alcotest.(check int) "rebiased cache serves the rest" 27 hits

(* A deopt invalidates the compiled code and with it the cached dispatch
   targets; the recompiled closure code must still dispatch correctly for
   every receiver. *)
let test_ic_deopt_invalidation () =
  let src =
    "class A { int v; int get() { return v; } }\n\
     class B extends A { int get() { return v * 2; } }\n\
     class C {\n\
    \  static A global;\n\
    \  static A mkA(int v) { A a = new A(); a.v = v; return a; }\n\
    \  static A mkB(int v) { B b = new B(); b.v = v; return b; }\n\
    \  static int f(A a, boolean cold) {\n\
    \    if (cold) { C.global = a; }\n\
    \    return a.get() + 1;\n\
    \  }\n\
     }"
  in
  let config = { ic_config with Jit.compile_threshold = 25; prune = true } in
  let program, vm = setup ~config src in
  let f = Link.find_method program "C" "f" in
  let a = Option.get (Vm.invoke vm (Link.find_method program "C" "mkA") [ vint 5 ]) in
  let b = Option.get (Vm.invoke vm (Link.find_method program "C" "mkB") [ vint 5 ]) in
  Vm.warm_up vm f [ a; vbool false ] 40;
  let s0 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check bool) "closure-compiled" true (s0.Stats.s_closure_compiled_methods >= 1);
  (* trigger the pruned branch: deopt, invalidation, recompilation *)
  Alcotest.(check int) "deopt call result" 6 (as_int (Vm.invoke vm f [ a; vbool true ]));
  let s1 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "one deopt" 1 (s1.Stats.s_deopts - s0.Stats.s_deopts);
  (* the recompiled code re-seeds its caches and dispatches correctly *)
  Alcotest.(check int) "A after recompile" 6 (as_int (Vm.invoke vm f [ a; vbool true ]));
  Alcotest.(check int) "B after recompile" 11 (as_int (Vm.invoke vm f [ b; vbool true ]));
  let s2 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "no further deopts" 0 (s2.Stats.s_deopts - s1.Stats.s_deopts);
  Alcotest.(check bool) "recompiled for the closure tier" true
    (s2.Stats.s_closure_compiled_methods > s0.Stats.s_closure_compiled_methods)

(* Register files are pooled: one invocation acquires the file, a normal
   return releases it, and the next invocation reuses it (the pool never
   grows beyond the call depth). *)
let test_register_file_pool () =
  let program = Link.compile_source ~require_main:false "class C { static int f(int x) { int y = x * 3; return y + 1; } }" in
  let stats = Stats.create () in
  let heap = Heap.create stats in
  let profile = Profile.create program in
  let globals = Array.make (max program.Link.n_statics 1) Value.Vnull in
  let env =
    {
      Interp.heap;
      stats;
      profile;
      globals;
      on_invoke = (fun _ _ -> Alcotest.fail "no calls in this graph");
      on_print = ignore;
      on_back_edge = (fun _ ~header:_ ~locals:_ -> Interp.No_osr);
      hooks = None;
    }
  in
  let m = Link.find_method program "C" "f" in
  let compiled =
    Jit.compile { Jit.default_config with Jit.prune = false } program profile m
  in
  let code = Closure_compile.compile env compiled.Jit.graph in
  Alcotest.(check int) "empty pool after translation" 0 (Closure_compile.pool_depth code);
  Alcotest.(check int) "first run" 16 (as_int (Closure_compile.run code [ vint 5 ]));
  Alcotest.(check int) "file released on return" 1 (Closure_compile.pool_depth code);
  Alcotest.(check int) "second run reuses the file" 31
    (as_int (Closure_compile.run code [ vint 10 ]));
  Alcotest.(check int) "pool does not grow" 1 (Closure_compile.pool_depth code)

(* A deopt must not leak the register file: with an in-frame deopt handler
   the file goes back to the pool once rematerialization and re-entrant
   interpretation finish, so the pool depth recovers to the call depth. *)
let test_pool_recovers_after_deopt () =
  let src =
    "class C {\n\
    \  static int g;\n\
    \  static int f(int x, boolean cold) {\n\
    \    int y = x * 3;\n\
    \    if (cold) { C.g = y; }\n\
    \    return y + 1;\n\
    \  }\n\
     }"
  in
  let program = Link.compile_source ~require_main:false src in
  let stats = Stats.create () in
  let heap = Heap.create stats in
  let profile = Profile.create program in
  let globals = Array.make (max program.Link.n_statics 1) Value.Vnull in
  let env =
    {
      Interp.heap;
      stats;
      profile;
      globals;
      on_invoke = (fun _ _ -> Alcotest.fail "no calls in this graph");
      on_print = ignore;
      on_back_edge = (fun _ ~header:_ ~locals:_ -> Interp.No_osr);
      hooks = None;
    }
  in
  let m = Link.find_method program "C" "f" in
  (* let the interpreter profile the branch as never-taken, so compilation
     prunes it to a Deopt terminator *)
  for _ = 1 to 30 do
    ignore (Interp.run env m [ vint 2; vbool false ])
  done;
  let compiled = Jit.compile Jit.default_config program profile m in
  let code = Closure_compile.compile env compiled.Jit.graph in
  let deopt d lookup = Deopt.handle env d lookup in
  Alcotest.(check int) "hot path" 16 (as_int (Closure_compile.run ~deopt code [ vint 5; vbool false ]));
  Alcotest.(check int) "pool holds the file" 1 (Closure_compile.pool_depth code);
  let before = Stats.get stats Stats.deopts in
  Alcotest.(check int) "deopting call result" 22
    (as_int (Closure_compile.run ~deopt code [ vint 7; vbool true ]));
  Alcotest.(check int) "deopt actually fired" (before + 1) (Stats.get stats Stats.deopts);
  Alcotest.(check int) "file released after deopt" 1 (Closure_compile.pool_depth code);
  Alcotest.(check int) "escaped value visible" 21 (as_int (Some globals.(0)))

(* The two tiers must agree bit-for-bit on every deterministic metric —
   the cost model cannot depend on how compiled graphs are executed. The
   scenario covers compiled arithmetic, allocation, virtual calls, field
   traffic and a deopt with a virtual object in the frame state. *)
let parity_src = Programs.tier_parity

let run_parity_scenario tier =
  let config =
    { Jit.default_config with Jit.compile_threshold = 25; exec_tier = tier }
  in
  let program, vm = setup ~config parity_src in
  let f = Link.find_method program "C" "f" in
  let a = Option.get (Vm.invoke vm (Link.find_method program "C" "mkA") [ vint 2 ]) in
  let b = Option.get (Vm.invoke vm (Link.find_method program "C" "mkB") [ vint 2 ]) in
  Vm.warm_up vm f [ a; vint 1; vbool false ] 40;
  let hot = as_int (Vm.invoke vm f [ a; vint 10; vbool false ]) in
  let deopt = as_int (Vm.invoke vm f [ a; vint 20; vbool true ]) in
  let poly = as_int (Vm.invoke vm f [ b; vint 30; vbool true ]) in
  ((hot, deopt, poly), Stats.snapshot (Vm.stats vm))

let test_cost_model_parity () =
  let results_d, sd = run_parity_scenario Jit.Direct in
  let results_c, sc = run_parity_scenario Jit.Closure in
  Alcotest.(check (triple int int int)) "same results" results_d results_c;
  Alcotest.(check int) "cycles" sd.Stats.s_cycles sc.Stats.s_cycles;
  Alcotest.(check int) "compiled ops" sd.Stats.s_compiled_ops sc.Stats.s_compiled_ops;
  Alcotest.(check int) "interpreted instrs" sd.Stats.s_interpreted_instrs
    sc.Stats.s_interpreted_instrs;
  Alcotest.(check int) "allocations" sd.Stats.s_allocations sc.Stats.s_allocations;
  Alcotest.(check int) "allocated bytes" sd.Stats.s_allocated_bytes sc.Stats.s_allocated_bytes;
  Alcotest.(check int) "monitor ops" sd.Stats.s_monitor_ops sc.Stats.s_monitor_ops;
  Alcotest.(check int) "stack allocs" sd.Stats.s_stack_allocs sc.Stats.s_stack_allocs;
  Alcotest.(check int) "deopts" sd.Stats.s_deopts sc.Stats.s_deopts;
  Alcotest.(check int) "rematerialized" sd.Stats.s_rematerialized sc.Stats.s_rematerialized;
  Alcotest.(check int) "invocations" sd.Stats.s_invocations sc.Stats.s_invocations;
  (* and the tier-specific counters only move on their own tier *)
  Alcotest.(check int) "direct tier builds no closures" 0 sd.Stats.s_closure_compiled_methods;
  Alcotest.(check int) "direct tier has no ic traffic" 0 (sd.Stats.s_ic_hits + sd.Stats.s_ic_misses);
  Alcotest.(check bool) "closure tier built closures" true
    (sc.Stats.s_closure_compiled_methods >= 1)

let () =
  Alcotest.run "exec_tier"
    [
      ( "inline-caches",
        [
          Alcotest.test_case "monomorphic hit" `Quick test_ic_monomorphic;
          Alcotest.test_case "polymorphic rebias" `Quick test_ic_polymorphic_rebias;
          Alcotest.test_case "deopt invalidation" `Quick test_ic_deopt_invalidation;
        ] );
      ( "register-files",
        [
          Alcotest.test_case "pooling" `Quick test_register_file_pool;
          Alcotest.test_case "pool recovers after deopt" `Quick test_pool_recovers_after_deopt;
        ] );
      ( "parity",
        [ Alcotest.test_case "cost model identical across tiers" `Quick test_cost_model_parity ]
      );
    ]
