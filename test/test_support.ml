(* Shared helpers for the VM differential suites.

   This module is linked into every test executable (it is not itself a
   test), so it must contain only definitions — no [Alcotest.run]. The
   support-library suite that used to live under this name is
   test_support_lib.ml.

   The centerpiece is [run_all_configs]: one place that enumerates the
   opt × exec-tier × OSR × compile-mode matrix, so differential tests
   stop re-rolling it by hand and automatically pick up new axes. *)

open Pea_rt
open Pea_vm
module Trace = Pea_obs.Trace

let string_of_result = function
  | None -> "void"
  | Some v -> Value.string_of_value v

(* The observable outcome of a VM run: last return value + every print,
   both stringified — the unit of differential comparison. *)
let outcome (r : Vm.result) =
  (string_of_result r.Vm.return_value, List.map Value.string_of_value r.Vm.printed)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let with_tracer ?capacity f =
  let t = Trace.create ?capacity () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () -> f t)

let opt_name = function Jit.O_none -> "none" | Jit.O_ea -> "ea" | Jit.O_pea -> "pea"

let tier_name = function Jit.Direct -> "direct" | Jit.Closure -> "closure"

(* ------------------------------------------------------------------ *)
(* The configuration matrix                                            *)
(* ------------------------------------------------------------------ *)

type cell = {
  c_opt : Jit.opt_level;
  c_tier : Jit.exec_tier;
  c_osr : bool;
  c_mode : Jit.compile_mode;
}

let cell_name c =
  Printf.sprintf "%s/%s/osr-%s/%s" (opt_name c.c_opt) (tier_name c.c_tier)
    (if c.c_osr then "on" else "off")
    (Jit.mode_string c.c_mode)

(* Async is deliberately not in the default mode axis: it spawns real
   domains per cell, and its deterministic counters are already pinned to
   Replay's bit-for-bit (test_async.ml asserts that equivalence, which is
   what makes Replay a faithful stand-in here). *)
let default_modes = [ Jit.Sync; Jit.Replay ]

let all_cells ?(modes = default_modes) () =
  List.concat_map
    (fun c_opt ->
      List.concat_map
        (fun c_tier ->
          List.concat_map
            (fun c_osr -> List.map (fun c_mode -> { c_opt; c_tier; c_osr; c_mode }) modes)
            [ false; true ])
        [ Jit.Direct; Jit.Closure ])
    [ Jit.O_none; Jit.O_ea; Jit.O_pea ]

let config_of_cell ?(base = Jit.default_config) c =
  {
    base with
    Jit.opt = c.c_opt;
    exec_tier = c.c_tier;
    osr = c.c_osr;
    compile_mode = c.c_mode;
  }

(* [run_all_configs src] runs [main] [iterations] times under every cell
   of the matrix and returns [(cell, result)] pairs, draining the
   background compile queue first so queue counters are accounted. The
   thresholds default low enough that a few iterations cross every tier
   boundary. *)
let run_all_configs ?(iterations = 8) ?(compile_threshold = 4) ?(osr_threshold = 3) ?modes
    ?(base = Jit.default_config) src =
  let program = Pea_bytecode.Link.compile_source src in
  List.map
    (fun cell ->
      let config =
        config_of_cell ~base:{ base with Jit.compile_threshold; osr_threshold } cell
      in
      let vm = Vm.create ~config program in
      let r = Vm.run_main_iterations vm iterations in
      Vm.quiesce vm;
      (cell, r))
    (all_cells ?modes ())

(* The interpreter-only reference for the same observation:
   [run_main_iterations]' outcome concatenates prints across iterations,
   so replicate the single-run prints. *)
let interp_reference ~iterations src =
  let r = Run.run_source src in
  ( string_of_result r.Run.return_value,
    List.concat (List.init iterations (fun _ -> List.map Value.string_of_value r.Run.printed))
  )

(* The counters every cell must agree on with its mode/tier siblings
   (wall-clock-independent model state). *)
let deterministic_counters (s : Stats.snapshot) =
  [
    ("cycles", s.Stats.s_cycles);
    ("interpreted_instrs", s.Stats.s_interpreted_instrs);
    ("compiled_ops", s.Stats.s_compiled_ops);
    ("allocations", s.Stats.s_allocations);
    ("allocated_bytes", s.Stats.s_allocated_bytes);
    ("monitor_ops", s.Stats.s_monitor_ops);
    ("deopts", s.Stats.s_deopts);
    ("osr_entries", s.Stats.s_osr_entries);
    ("osr_compiles", s.Stats.s_osr_compiles);
    ("invocations", s.Stats.s_invocations);
    ("compile_enqueues", s.Stats.s_compile_enqueues);
    ("compile_installs", s.Stats.s_compile_installs);
    ("compile_stale_discards", s.Stats.s_compile_stale_discards);
    ("compile_drops", s.Stats.s_compile_drops);
    ("compile_failures", s.Stats.s_compile_failures);
  ]
