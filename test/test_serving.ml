(* Multi-tenant serving harness (lib/serve).

   - Storm isolation: a tenant driven through a deopt storm is
     quarantined to interpreter-only serving, while every victim
     tenant's results, per-request latencies and full VM counters are
     *exactly equal* to a quiet run where the storm never happens, and
     the victims' shared-cache entries survive the storm.
   - Epoch race: a deopt racing a cross-tenant compile moves the shared
     (app, method) epoch while the task is in flight; the finished graph
     is rejected ([cache_epoch_rejects]) and requeued — a stale epoch is
     never installed, and the entry eventually present carries the
     current epoch.
   - Replay determinism: two runs of the same session script produce
     structurally identical reports and byte-identical trace JSONL.
   - Threaded mode (MJVM_TEST_SERVE=real): real worker domains produce
     the same reports as replay — counter-identical, not just
     result-identical.

   Serving configs are built explicitly: the harness forces Sync + no
   OSR on tenant VMs by design, so [Test_env.apply]'s compile-mode and
   OSR axes do not apply here. *)

open Pea_rt
open Pea_vm
module Server = Pea_serve.Server
module Shared_cache = Pea_serve.Shared_cache
module Sessions = Pea_workloads.Sessions
module Trace = Pea_obs.Trace
module Event = Pea_obs.Event

(* Short-session config for the cache-sharing and determinism tests: a
   low threshold compiles quickly (pruning stays off below the pruner's
   20-execution floor, which these tests don't need). *)
let test_jit = { Jit.default_config with Jit.compile_threshold = 4 }

let test_config = { Server.default_config with Server.sv_jit = test_jit }

(* Deopt-driven tests keep the default threshold of 20: the compile
   profile snapshot must clear the pruner's floor, or the trap branches
   are never speculated and never deopt (see Sessions.storm_script). *)
let storm_config =
  { Server.default_config with Server.sv_jit = { Jit.default_config with Jit.compile_threshold = 20 } }

let storm_report ~storm () =
  Server.run ~config:storm_config
    (Sessions.storm_script ~storm ~victims:2 ~rounds:26 ~requests_per_round:6 ~seed:11 ())

let tenant report name =
  match List.find_opt (fun tr -> tr.Server.tr_name = name) report.Server.r_tenants with
  | Some tr -> tr
  | None -> Alcotest.failf "no tenant %s in report" name

(* ------------------------------------------------------------------ *)
(* Storm isolation                                                     *)
(* ------------------------------------------------------------------ *)

let test_storm_quarantines_stormy () =
  let r = storm_report ~storm:true () in
  Alcotest.(check (list string)) "only the stormy tenant is quarantined" [ "stormy" ]
    r.Server.r_quarantined;
  Alcotest.(check bool) "stormy tenant flagged" true (tenant r "stormy").Server.tr_quarantined;
  Alcotest.(check bool) "victims untouched" false
    ((tenant r "victim-0").Server.tr_quarantined || (tenant r "victim-1").Server.tr_quarantined);
  Alcotest.(check int) "one quarantine counted" 1 r.Server.r_stats.Stats.s_tenant_quarantines;
  (* the storm actually stormed: the stormy tenant's VM saw repeated
     deopts before the pin *)
  Alcotest.(check bool) "stormy tenant deopted repeatedly" true
    ((tenant r "stormy").Server.tr_stats.Stats.s_deopts >= 5)

let test_storm_quarantine_is_interp_only () =
  let script =
    Sessions.storm_script ~storm:true ~victims:2 ~rounds:26 ~requests_per_round:6 ~seed:11 ()
  in
  let server = Server.create ~config:storm_config script in
  Server.run_rounds server script.Server.sc_rounds;
  let r = Server.report server in
  Alcotest.(check (list string)) "stormy quarantined" [ "stormy" ] r.Server.r_quarantined;
  Alcotest.(check bool) "stormy VM demoted to interpreter-only" true
    (Vm.interp_only (Server.tenant_vm server 0));
  Alcotest.(check bool) "victim VMs still tiered" false
    (Vm.interp_only (Server.tenant_vm server 1) || Vm.interp_only (Server.tenant_vm server 2));
  (* nothing the stormy tenant did evicted the victims' app from the
     shared cache: their handlers are still installed *)
  let cache = Server.cache server in
  let app = Server.tenant_app_index server 1 in
  List.iter
    (fun name ->
      let m = Server.find_app_method server ~app "Svc" name in
      Alcotest.(check bool)
        (Printf.sprintf "pair-svc %s still cached after the storm" name)
        true
        (Shared_cache.mem cache (app, m.Pea_bytecode.Classfile.mth_id)))
    [ "handle"; "mix" ];
  (* the stormy tenant's own (trap-svc) entry is gone — its storm only
     ever cost itself *)
  Alcotest.(check int) "cache holds exactly the victims' methods" 2 r.Server.r_cache_entries

let test_storm_leaves_victims_bit_identical () =
  let stormy_run = storm_report ~storm:true () in
  let quiet_run = storm_report ~storm:false () in
  Alcotest.(check (list string)) "quiet run quarantines nobody" [] quiet_run.Server.r_quarantined;
  List.iter
    (fun name ->
      let a = tenant stormy_run name and b = tenant quiet_run name in
      Alcotest.(check (list string))
        (name ^ ": results identical under the storm")
        b.Server.tr_results a.Server.tr_results;
      Alcotest.(check (list int))
        (name ^ ": per-request latencies identical under the storm")
        b.Server.tr_latencies a.Server.tr_latencies;
      Alcotest.(check bool)
        (name ^ ": full VM counters identical under the storm")
        true
        (a.Server.tr_stats = b.Server.tr_stats))
    [ "victim-0"; "victim-1" ]

(* ------------------------------------------------------------------ *)
(* Shared cache: cross-tenant hits and the epoch race                  *)
(* ------------------------------------------------------------------ *)

let test_shared_cache_cross_tenant_hits () =
  let script = Sessions.mixed_script ~tenants:4 ~rounds:10 ~requests_per_round:12 ~seed:3 () in
  let r = Server.run ~config:test_config script in
  let total = List.fold_left (fun n rnd -> n + List.length rnd) 0 script.Server.sc_rounds in
  Alcotest.(check int) "every request served and counted" total r.Server.r_stats.Stats.s_serve_requests;
  Alcotest.(check bool) "code is shared across tenants" true
    (r.Server.r_stats.Stats.s_cache_shared_hits > 0);
  (* two tenants per app: each installed method is adopted by both, so
     hits strictly exceed installs *)
  Alcotest.(check bool) "more adoptions than compilations" true
    (r.Server.r_stats.Stats.s_cache_shared_hits > r.Server.r_stats.Stats.s_compile_installs);
  (* the server's hit counter is the sum of the per-tenant ones *)
  let tenant_hits =
    List.fold_left (fun n tr -> n + tr.Server.tr_shared_hits) 0 r.Server.r_tenants
  in
  Alcotest.(check int) "per-tenant hits sum to the server counter"
    r.Server.r_stats.Stats.s_cache_shared_hits tenant_hits

(* Both tenants share the trap app. A's deopt bumps the epoch and A's
   recompile is enqueued with deadline two barriers out; B — still
   running its locally installed copy of the dropped entry — deopts
   before that deadline, moving the epoch again. The in-flight result
   must be rejected, never installed, and recompiled against the fresh
   epoch. *)
let test_epoch_race_rejects_stale_install () =
  let req t x = { Server.rq_tenant = t; rq_class = "Svc"; rq_method = "handle"; rq_args = [ x ] } in
  (* five warm calls per tenant per round: invocations cross the
     threshold (20) at round 4 with the branch profile already past the
     pruner's floor *)
  let benign = List.concat_map (fun t -> List.init 5 (fun i -> req t (1 + i + (7 * t)))) [ 0; 1 ] in
  let rounds =
    [
      benign; (* 0-3: warm *)
      benign;
      benign;
      benign;
      benign; (* 4: both hot — both request; barrier enqueues (epoch 0, deadline 6) *)
      benign; (* 5: in flight *)
      benign; (* 6: barrier installs epoch 0 *)
      benign @ [ req 0 9001 ]; (* 7: both adopt; A deopts; barrier bumps to epoch 1 *)
      benign; (* 8: A re-requests; barrier enqueues epoch 1, deadline 10 *)
      benign @ [ req 1 9002 ]; (* 9: B (its local copy) deopts; barrier bumps to epoch 2 *)
      benign; (* 10: barrier: epoch-1 result is stale — rejected, requeued *)
      benign; (* 11 *)
      benign; (* 12: barrier installs the epoch-2 result *)
      benign; (* 13: both re-adopt *)
      benign; (* 14 *)
    ]
  in
  let script =
    {
      Server.sc_apps = [ ("trap-svc", Sessions.trap_app) ];
      sc_tenants = [ ("a", 0); ("b", 0) ];
      sc_rounds = rounds;
    }
  in
  let config = { storm_config with Server.sv_compile_rounds = 2 } in
  Trace.uninstall ();
  let trace = Trace.create () in
  Trace.install trace;
  let server, r =
    Fun.protect ~finally:Trace.uninstall (fun () ->
        let server = Server.create ~config script in
        Server.run_rounds server script.Server.sc_rounds;
        (server, Server.report server))
  in
  Alcotest.(check bool) "the stale result was rejected" true
    (r.Server.r_stats.Stats.s_cache_epoch_rejects >= 1);
  Alcotest.(check (list string)) "nobody was quarantined" [] r.Server.r_quarantined;
  (* the invariant the reject protects: whatever is installed carries the
     key's current epoch *)
  let cache = Server.cache server in
  let m = Server.find_app_method server ~app:0 "Svc" "handle" in
  let key = (0, m.Pea_bytecode.Classfile.mth_id) in
  Alcotest.(check bool) "entry present after the race" true (Shared_cache.mem cache key);
  Alcotest.(check (option int)) "installed entry carries the current epoch"
    (Some (Shared_cache.epoch cache key))
    (Shared_cache.entry_epoch cache key);
  (* trace-level confirmation: a reject event fired, and no publish event
     ever carried a stale epoch *)
  let events = List.map (fun e -> e.Trace.e_event) (Trace.entries trace) in
  Alcotest.(check bool) "cache_epoch_reject event recorded" true
    (List.exists (function Event.Cache_epoch_reject _ -> true | _ -> false) events);
  let final_epoch = Shared_cache.epoch cache key in
  List.iter
    (function
      | Event.Cache_publish { epoch; _ } ->
          Alcotest.(check bool) "every publish was epoch-valid at install time" true
            (epoch = 0 || epoch = final_epoch)
      | _ -> ())
    events;
  (* both tenants end up back on shared code *)
  Alcotest.(check bool) "both tenants re-adopted the fresh code" true
    (List.for_all (fun tr -> tr.Server.tr_shared_hits >= 2) r.Server.r_tenants)

(* ------------------------------------------------------------------ *)
(* Replay determinism                                                  *)
(* ------------------------------------------------------------------ *)

let mixed () = Sessions.mixed_script ~tenants:3 ~rounds:8 ~requests_per_round:9 ~seed:42 ()

let test_replay_deterministic_reports () =
  let r1 = Server.run ~config:test_config (mixed ()) in
  let r2 = Server.run ~config:test_config (mixed ()) in
  Alcotest.(check bool) "two replay runs: structurally identical reports" true (r1 = r2)

let test_replay_deterministic_trace () =
  let trace_of_run () =
    Trace.uninstall ();
    let t = Trace.create () in
    Trace.install t;
    Fun.protect ~finally:Trace.uninstall (fun () ->
        ignore (Server.run ~config:test_config (mixed ()));
        Trace.jsonl_string t)
  in
  let j1 = trace_of_run () in
  let j2 = trace_of_run () in
  Alcotest.(check bool) "trace JSONL is non-trivial" true (String.length j1 > 0);
  Alcotest.(check string) "two replay runs: byte-identical trace JSONL" j1 j2

let test_percentile_nearest_rank () =
  let samples = [ 5; 1; 9; 3; 7 ] in
  Alcotest.(check int) "p50 of odd-length sample" 5 (Server.percentile samples 50);
  Alcotest.(check int) "p99 is the max here" 9 (Server.percentile samples 99);
  Alcotest.(check int) "p0 clamps to the min" 1 (Server.percentile samples 0);
  Alcotest.(check int) "empty sample" 0 (Server.percentile [] 99)

(* ------------------------------------------------------------------ *)
(* Threaded mode (real domains; MJVM_TEST_SERVE=real)                  *)
(* ------------------------------------------------------------------ *)

let threaded_config workers =
  { test_config with Server.sv_mode = Server.Threaded workers }

let test_threaded_equals_replay () =
  let replay = Server.run ~config:test_config (mixed ()) in
  List.iter
    (fun workers ->
      let threaded = Server.run ~config:(threaded_config workers) (mixed ()) in
      Alcotest.(check bool)
        (Printf.sprintf "%d worker domains: report identical to replay" workers)
        true (threaded = replay))
    [ 1; 2; 4 ]

let test_threaded_storm_isolation () =
  let script ~storm =
    Sessions.storm_script ~storm ~victims:3 ~rounds:26 ~requests_per_round:6 ~seed:5 ()
  in
  let threaded_storm = { storm_config with Server.sv_mode = Server.Threaded 4 } in
  let stormy_run = Server.run ~config:threaded_storm (script ~storm:true) in
  let quiet_run = Server.run ~config:threaded_storm (script ~storm:false) in
  Alcotest.(check (list string)) "threaded: stormy quarantined" [ "stormy" ]
    stormy_run.Server.r_quarantined;
  List.iter
    (fun i ->
      let name = Printf.sprintf "victim-%d" i in
      let a = tenant stormy_run name and b = tenant quiet_run name in
      Alcotest.(check bool)
        (name ^ ": threaded victims bit-identical under the storm")
        true
        (a.Server.tr_results = b.Server.tr_results
        && a.Server.tr_latencies = b.Server.tr_latencies
        && a.Server.tr_stats = b.Server.tr_stats))
    [ 0; 1; 2 ]

let () =
  let threaded =
    if Test_env.serve_real () then
      [
        Alcotest.test_case "threaded report = replay report" `Quick test_threaded_equals_replay;
        Alcotest.test_case "threaded storm isolation" `Quick test_threaded_storm_isolation;
      ]
    else []
  in
  Alcotest.run "serving"
    [
      ( "isolation",
        [
          Alcotest.test_case "storm quarantines only the stormy tenant" `Quick
            test_storm_quarantines_stormy;
          Alcotest.test_case "quarantine demotes to interpreter, cache survives" `Quick
            test_storm_quarantine_is_interp_only;
          Alcotest.test_case "victims bit-identical storm vs quiet" `Quick
            test_storm_leaves_victims_bit_identical;
        ] );
      ( "shared-cache",
        [
          Alcotest.test_case "cross-tenant shared hits" `Quick test_shared_cache_cross_tenant_hits;
          Alcotest.test_case "epoch race rejects the stale install" `Quick
            test_epoch_race_rejects_stale_install;
        ] );
      ( "replay",
        [
          Alcotest.test_case "deterministic reports" `Quick test_replay_deterministic_reports;
          Alcotest.test_case "byte-identical trace" `Quick test_replay_deterministic_trace;
          Alcotest.test_case "percentile (nearest rank)" `Quick test_percentile_nearest_rank;
        ] );
      ("threaded", threaded);
    ]
