(* A corpus of MJ programs shared by the differential test suites. Each
   exercises a distinct slice of the language/optimizer surface. *)

let main_wrap body = Printf.sprintf "class Main { static int main() { %s } }" body

let corpus : (string * string) list =
  [
    ("arith", main_wrap "return 2 + 3 * 4 - 6 / 2;");
    ("locals", main_wrap "int a = 1; int b = a + 2; int c = b * b; return c - a;");
    ( "branches",
      main_wrap "int x = 10; int r = 0; if (x > 5) r = 1; else r = 2; if (x == 10) r = r + 10; return r;"
    );
    ( "loop-sum",
      main_wrap "int i = 0; int acc = 0; while (i < 50) { acc = acc + i; i = i + 1; } return acc;" );
    ( "nested-loop",
      main_wrap
        "int acc = 0; int i = 0; while (i < 8) { int j = 0; while (j < i) { acc = acc + j; j = j + 1; } i = i + 1; } return acc;"
    );
    ( "short-circuit",
      "class Main {\n\
      \  static int calls;\n\
      \  static boolean bump() { calls = calls + 1; return true; }\n\
      \  static int main() {\n\
      \    calls = 0;\n\
      \    boolean a = false && Main.bump();\n\
      \    boolean b = true || Main.bump();\n\
      \    boolean c = true && Main.bump();\n\
      \    if (a || !b) return 0 - 1;\n\
      \    return calls;\n\
      \  }\n\
       }" );
    ( "object-simple",
      "class P { int x; int y; }\n\
       class Main { static int main() { P p = new P(); p.x = 3; p.y = 39; return p.x + p.y; } }" );
    ( "ctor-chain",
      "class V { int a; int b; V(int a0, int b0) { a = a0; b = b0; } int sum() { return a + b; } }\n\
       class Main { static int main() { V v = new V(20, 22); return v.sum(); } }" );
    ( "escape-global",
      "class Box { int v; Box(int v0) { v = v0; } }\n\
       class Main {\n\
      \  static Box keep;\n\
      \  static int main() {\n\
      \    int acc = 0; int i = 0;\n\
      \    while (i < 30) {\n\
      \      Box b = new Box(i);\n\
      \      if (i == 17) keep = b;\n\
      \      acc = acc + b.v;\n\
      \      i = i + 1;\n\
      \    }\n\
      \    if (keep != null) acc = acc + keep.v;\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "cache-key",
      "class Key {\n\
      \  int idx;\n\
      \  Object ref;\n\
      \  Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }\n\
      \  synchronized boolean sameAs(Key other) {\n\
      \    if (other == null) return false;\n\
      \    return idx == other.idx && ref == other.ref;\n\
      \  }\n\
       }\n\
       class Cache {\n\
      \  static Key cacheKey;\n\
      \  static int cacheValue;\n\
      \  static int getValue(int idx, Object ref) {\n\
      \    Key key = new Key(idx, ref);\n\
      \    if (key.sameAs(Cache.cacheKey)) return Cache.cacheValue;\n\
      \    Cache.cacheKey = key;\n\
      \    Cache.cacheValue = idx * 3;\n\
      \    return Cache.cacheValue;\n\
      \  }\n\
       }\n\
       class Main {\n\
      \  static int main() {\n\
      \    Object o = new Object();\n\
      \    int acc = 0; int i = 0;\n\
      \    while (i < 40) { acc = acc + Cache.getValue(i / 8, o); i = i + 1; }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "virtual-dispatch",
      "class A { int f() { return 1; } int g() { return f() * 10; } }\n\
       class B extends A { int f() { return 2; } }\n\
       class C extends A { int f() { return 3; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    A a = new A(); A b = new B(); A c = new C();\n\
      \    return a.g() + b.g() + c.g();\n\
      \  }\n\
       }" );
    ( "sync-counter",
      "class Counter { int v; synchronized void bump() { v = v + 1; } synchronized int get() { return v; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    Counter c = new Counter();\n\
      \    int i = 0;\n\
      \    while (i < 25) { c.bump(); i = i + 1; }\n\
      \    return c.get();\n\
      \  }\n\
       }" );
    ( "arrays",
      main_wrap
        "int[] a = new int[16]; int i = 0;\n\
         while (i < 16) { a[i] = i * i; i = i + 1; }\n\
         int acc = 0; i = 0;\n\
         while (i < a.length) { acc = acc + a[i]; i = i + 1; }\n\
         return acc;" );
    ( "array-of-refs",
      "class P { int v; P(int v0) { v = v0; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    P[] ps = new P[8]; int i = 0;\n\
      \    while (i < 8) { ps[i] = new P(i); i = i + 1; }\n\
      \    int acc = 0; i = 0;\n\
      \    while (i < 8) { acc = acc + ps[i].v; i = i + 1; }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "instanceof-cast",
      "class A { }\n\
       class B extends A { int v; }\n\
       class Main {\n\
      \  static int main() {\n\
      \    A x = new B();\n\
      \    int acc = 0;\n\
      \    if (x instanceof B) { B b = (B) x; b.v = 21; acc = acc + b.v; }\n\
      \    if (x instanceof A) acc = acc * 2;\n\
      \    A y = new A();\n\
      \    if (y instanceof B) acc = 0 - 1;\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "linked-list",
      "class Node2 { int v; Node2 next; Node2(int v0, Node2 n) { v = v0; next = n; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    Node2 head = null; int i = 0;\n\
      \    while (i < 10) { head = new Node2(i, head); i = i + 1; }\n\
      \    int acc = 0;\n\
      \    Node2 cur = head;\n\
      \    while (cur != null) { acc = acc + cur.v; cur = cur.next; }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "cyclic-pair",
      "class Cell { int v; Cell other; }\n\
       class Main {\n\
      \  static int main() {\n\
      \    Cell a = new Cell(); Cell b = new Cell();\n\
      \    a.v = 13; b.v = 29;\n\
      \    a.other = b; b.other = a;\n\
      \    return a.other.v + b.other.v;\n\
      \  }\n\
       }" );
    ( "phi-objects",
      "class P { int v; P(int v0) { v = v0; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    int acc = 0; int i = 0;\n\
      \    while (i < 20) {\n\
      \      P p = null;\n\
      \      if (i % 2 == 0) p = new P(i); else p = new P(0 - i);\n\
      \      acc = acc + p.v;\n\
      \      i = i + 1;\n\
      \    }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "loop-carried-object",
      "class Acc { int total; }\n\
       class Main {\n\
      \  static int main() {\n\
      \    Acc a = new Acc();\n\
      \    int i = 0;\n\
      \    while (i < 15) { a.total = a.total + i; i = i + 1; }\n\
      \    return a.total;\n\
      \  }\n\
       }" );
    ( "object-identity",
      "class P { int v; }\n\
       class Main {\n\
      \  static int main() {\n\
      \    P a = new P(); P b = new P(); P c = a;\n\
      \    int acc = 0;\n\
      \    if (a == c) acc = acc + 1;\n\
      \    if (a != b) acc = acc + 2;\n\
      \    if (b != c) acc = acc + 4;\n\
      \    if (a != null) acc = acc + 8;\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "prints",
      main_wrap "int i = 0; while (i < 5) { print(i * 7); i = i + 1; } print(true); return 0;" );
    ( "recursion",
      "class Main {\n\
      \  static int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
      \  static int main() { return fib(12); }\n\
       }" );
    ( "deep-calls",
      "class Main {\n\
      \  static int f1(int x) { return f2(x) + 1; }\n\
      \  static int f2(int x) { return f3(x) + 1; }\n\
      \  static int f3(int x) { return f4(x) + 1; }\n\
      \  static int f4(int x) { return x * 2; }\n\
      \  static int main() { return f1(10); }\n\
       }" );
    ( "builder-churn",
      "class Builder { int total; Builder add(int x) { total = total + x; return this; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    int acc = 0; int i = 0;\n\
      \    while (i < 12) {\n\
      \      Builder b = new Builder();\n\
      \      acc = acc + b.add(i).add(i * 2).add(3).total;\n\
      \      i = i + 1;\n\
      \    }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "mixed-escape-branch",
      "class E { int v; E(int v0) { v = v0; } }\n\
       class Main {\n\
      \  static E sink;\n\
      \  static int main() {\n\
      \    int acc = 0; int i = 0;\n\
      \    while (i < 32) {\n\
      \      E e = new E(i);\n\
      \      if (i % 11 == 10) { sink = e; }\n\
      \      acc = acc + e.v;\n\
      \      i = i + 1;\n\
      \    }\n\
      \    return acc + sink.v;\n\
      \  }\n\
       }" );
    ("while-true", main_wrap "int i = 0; while (true) { i = i + 3; if (i > 20) return i; }");
    ( "for-sugar",
      main_wrap
        "int acc = 0;\n\
         for (int i = 0; i < 12; i++) { acc += i * i; }\n\
         for (int j = 10; j > 0; j -= 2) { acc -= j; }\n\
         return acc;" );
    ( "const-arrays",
      main_wrap
        "int[] a = new int[4];\n\
         a[0] = 3; a[1] = a[0] * 2; a[2] = a[0] + a[1]; a[3] = a.length;\n\
         int acc = 0;\n\
         for (int i = 0; i < 30; i++) { int[] b = new int[2]; b[0] = i; b[1] = b[0] + 1; acc += b[0] * b[1]; }\n\
         return acc + a[2] + a[3];" );
    ( "escaping-array",
      "class Main {\n\
      \  static int[] keep;\n\
      \  static int main() {\n\
      \    int acc = 0;\n\
      \    for (int i = 0; i < 25; i++) {\n\
      \      int[] a = new int[3];\n\
      \      a[0] = i; a[1] = i * 2; a[2] = a[0] + a[1];\n\
      \      if (i == 13) { Main.keep = a; }\n\
      \      acc += a[2];\n\
      \    }\n\
      \    return acc + Main.keep[1];\n\
      \  }\n\
       }" );
    ( "exceptions-mixed",
      "class Neg { int v; Neg(int v0) { v = v0; } }\n\
       class Main {\n\
      \  static int checked(int x) { if (x % 7 == 3) { throw new Neg(x); } return x; }\n\
      \  static int main() {\n\
      \    int acc = 0;\n\
      \    for (int i = 0; i < 30; i++) {\n\
      \      try { acc += Main.checked(i); } catch (Neg n) { acc += n.v * 100; }\n\
      \    }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "swap-loop",
      main_wrap
        "int a = 1; int b = 1000; int i = 0;\n\
         while (i < 9) { int t = a; a = b; b = t; i++; }\n\
         return a * 2 + b;" );
    ( "deep-hierarchy",
      "class A { int f() { return 1; } int g() { return f() * 100; } }\n\
       class B extends A { int f() { return 2; } }\n\
       class C extends B { int f() { return 3; } }\n\
       class D extends C { }\n\
       class Main {\n\
      \  static int main() {\n\
      \    A[] xs = new A[4];\n\
      \    xs[0] = new A(); xs[1] = new B(); xs[2] = new C(); xs[3] = new D();\n\
      \    int acc = 0;\n\
      \    for (int i = 0; i < 4; i++) { acc += xs[i].g(); }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "object-before-loop-escape-after",
      "class Box { int v; }\n\
       class Main {\n\
      \  static Box out;\n\
      \  static int main() {\n\
      \    Box b = new Box();\n\
      \    for (int i = 0; i < 20; i++) { b.v += i; }\n\
      \    Main.out = b;\n\
      \    return Main.out.v;\n\
      \  }\n\
       }" );
    ( "builder-pattern-chain",
      "class Sb { int len; int hash; Sb add(int x) { len++; hash = hash * 31 + x; return this; } int seal() { return hash + len; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    int acc = 0;\n\
      \    for (int i = 0; i < 40; i++) {\n\
      \      acc += new Sb().add(i).add(acc % 7).add(3).seal();\n\
      \      acc %= 1000003;\n\
      \    }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "sync-nested",
      "class L { int v; }\n\
       class Main {\n\
      \  static int main() {\n\
      \    L a = new L(); L b = new L();\n\
      \    int acc = 0;\n\
      \    for (int i = 0; i < 10; i++) {\n\
      \      synchronized (a) { synchronized (b) { synchronized (a) { a.v += i; b.v += a.v; } } }\n\
      \    }\n\
      \    acc = a.v * 1000 + b.v;\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "array-alias-write",
      "class Main {\n\
      \  static int main() {\n\
      \    int[] a = new int[4];\n\
      \    int[] b = a;\n\
      \    a[1] = 5;\n\
      \    b[1] = b[1] + 6;\n\
      \    a[2] = b[1];\n\
      \    return a[1] * 100 + a[2] + b.length;\n\
      \  }\n\
       }" );
    ( "cast-chain",
      "class A { int f() { return 1; } }\n\
       class B extends A { int f() { return 2; } int only() { return 20; } }\n\
       class C2 extends B { int f() { return 3; } }\n\
       class Main {\n\
      \  static int main() {\n\
      \    A x = new C2();\n\
      \    int acc = x.f();\n\
      \    if (x instanceof B) { B b = (B) x; acc += b.only(); }\n\
      \    if (x instanceof C2) { C2 c = (C2) x; acc += c.f() * 100; }\n\
      \    return acc;\n\
      \  }\n\
       }" );
    ( "triangular-loops",
      main_wrap
        "int acc = 0;\n\
         for (int i = 0; i < 10; i++) {\n\
        \   for (int j = 0; j <= i; j++) { acc += i * 10 + j; }\n\
         }\n\
         return acc;" );
    ( "div-rem",
      main_wrap "int acc = 0; int i = 1; while (i < 30) { acc = acc + 100 / i + (100 % i); i = i + 1; } return acc;"
    );
  ]

(* ------------------------------------------------------------------ *)
(* Named programs                                                      *)
(*                                                                     *)
(* White-box scenarios that several suites need under a known name and *)
(* shape (loop trip counts, branch layout, class hierarchy) rather     *)
(* than as a random corpus draw. Keeping them here stops each suite    *)
(* from re-declaring its own copy.                                     *)
(* ------------------------------------------------------------------ *)

(* A single invocation of a hot allocating loop: the OSR scenario. 600
   iterations, one Point allocation per iteration. *)
let hot_loop =
  "class Point { int x; int y; }\n\
   class Main {\n\
  \  static int main() {\n\
  \    int s = 0;\n\
  \    int i = 0;\n\
  \    while (i < 600) {\n\
  \      Point p = new Point();\n\
  \      p.x = i;\n\
  \      p.y = 3;\n\
  \      s = s + p.x + p.y;\n\
  \      i = i + 1;\n\
  \    }\n\
  \    return s;\n\
  \  }\n\
   }"

(* A loop nest whose inner header gets hot first: OSR back-edge
   classification from a non-entry block. *)
let nested_loops =
  "class Main {\n\
  \  static int main() {\n\
  \    int s = 0;\n\
  \    int i = 0;\n\
  \    while (i < 8) {\n\
  \      int j = 0;\n\
  \      while (j < 40) {\n\
  \        s = s + i * j + 1;\n\
  \        j = j + 1;\n\
  \      }\n\
  \      i = i + 1;\n\
  \    }\n\
  \    return s;\n\
  \  }\n\
   }"

(* Two independently-pruned cold branches over a fully scalar-replaced
   allocation: the per-site deopt-policy scenario (no main; drive C.f
   directly). *)
let two_branch =
  "class I { int v; }\n\
   class C {\n\
  \  static int g;\n\
  \  static int f(int x, boolean a, boolean b) {\n\
  \    I i = new I();\n\
  \    i.v = x;\n\
  \    if (a) { C.g = C.g + i.v; }\n\
  \    if (b) { C.g = C.g + i.v * 2; }\n\
  \    return i.v + 1;\n\
  \  }\n\
   }"

(* A virtual call in a hot loop with an A/B receiver hierarchy: the
   inline-cache scenario (no main; drive C.f with mkA/mkB receivers). *)
let ic_dispatch =
  "class A { int v; int get() { return v; } }\n\
   class B extends A { int get() { return v * 2; } }\n\
   class C {\n\
  \  static A mkA(int v) { A a = new A(); a.v = v; return a; }\n\
  \  static A mkB(int v) { B b = new B(); b.v = v; return b; }\n\
  \  static int f(A a, int n) {\n\
  \    int s = 0;\n\
  \    int i = 0;\n\
  \    while (i < n) { s = s + a.get(); i = i + 1; }\n\
  \    return s;\n\
  \  }\n\
   }"

(* Compiled arithmetic, allocation, virtual dispatch, field traffic and
   a pruned branch that deopts with a virtual object in the frame state:
   the cross-tier cost-model-parity scenario (no main). *)
let tier_parity =
  "class I { int val; }\n\
   class A { int v; int get() { return v; } }\n\
   class B extends A { int get() { return v * 2; } }\n\
   class C {\n\
  \  static I global;\n\
  \  static A mkA(int v) { A a = new A(); a.v = v; return a; }\n\
  \  static A mkB(int v) { B b = new B(); b.v = v; return b; }\n\
  \  static int f(A recv, int x, boolean cold) {\n\
  \    I i = new I();\n\
  \    i.val = x + recv.get();\n\
  \    if (cold) { C.global = i; }\n\
  \    return i.val + 1;\n\
  \  }\n\
   }"

(* The paper's running example (§4, Listings 4-6): the Key allocation
   escapes only on the cache-miss path (no main; analyze
   Cache.getValue). *)
let cache =
  "class Key {\n\
  \  int idx;\n\
  \  Object ref;\n\
  \  Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }\n\
  \  synchronized boolean sameAs(Key other) {\n\
  \    if (other == null) return false;\n\
  \    return idx == other.idx && ref == other.ref;\n\
  \  }\n\
   }\n\
   class Cache {\n\
  \  static Key cacheKey;\n\
  \  static int cacheValue;\n\
  \  static int getValue(int idx, Object ref) {\n\
  \    Key key = new Key(idx, ref);\n\
  \    if (key.sameAs(Cache.cacheKey)) {\n\
  \      return Cache.cacheValue;\n\
  \    } else {\n\
  \      Cache.cacheKey = key;\n\
  \      Cache.cacheValue = idx * 2;\n\
  \      return Cache.cacheValue;\n\
  \    }\n\
  \  }\n\
   }"

(* [cache] driven by a hot main: the single-entry cache hit/miss mix of
   the paper's evaluation loop (examples/cache.mj). The miss branch is
   profiled cold, pruned, and periodically deopts — under background
   compilation that deopt can race an in-flight compile of the same
   method, which is exactly the stale-discard scenario. *)
let cache_loop =
  cache
  ^ "\n\
     class Main {\n\
    \  static int main() {\n\
    \    Object o = new Object();\n\
    \    int acc = 0;\n\
    \    int i = 0;\n\
    \    while (i < 1000) {\n\
    \      acc = acc + Cache.getValue(i / 100, o);\n\
    \      i = i + 1;\n\
    \    }\n\
    \    return acc;\n\
    \  }\n\
     }"

(* The fully-local variant (Listing 1): the Key never escapes, so
   whole-method EA already removes everything. *)
let local_cache =
  "class Key {\n\
  \  int idx;\n\
  \  Object ref;\n\
  \  Key(int idx, Object ref) { this.idx = idx; this.ref = ref; }\n\
  \  synchronized boolean sameAs(Key other) {\n\
  \    if (other == null) return false;\n\
  \    return idx == other.idx && ref == other.ref;\n\
  \  }\n\
   }\n\
   class Cache {\n\
  \  static Key cacheKey;\n\
  \  static int cacheValue;\n\
  \  static int getValue(int idx, Object ref) {\n\
  \    Key key = new Key(idx, ref);\n\
  \    if (key.sameAs(Cache.cacheKey)) {\n\
  \      return Cache.cacheValue;\n\
  \    }\n\
  \    return idx * 7;\n\
  \  }\n\
   }"

(* A deopt trap driven by a persistent iteration counter: interpreted
   warm-up profiles the escape branch as never taken, the compiled code
   prunes it, and iteration 24 fires a real deoptimization with the
   object virtual in the frame state. Run for 25+ main iterations with
   compile_threshold 22 (see test_obs.ml / test_properties.ml). *)
let deopt_trap =
  "class P { int a; int b; }\n\
   class Main {\n\
  \  static P g;\n\
  \  static int iterc;\n\
  \  static int main() {\n\
  \    Main.iterc = Main.iterc + 1;\n\
  \    P p = new P();\n\
  \    p.a = Main.iterc; p.b = 7;\n\
  \    int s = 0;\n\
  \    int i = 0;\n\
  \    while (i < 20) {\n\
  \      P q = new P();\n\
  \      q.a = i;\n\
  \      s = s + q.a + p.b;\n\
  \      i = i + 1;\n\
  \    }\n\
  \    if (Main.iterc > 23) { Main.g = p; }\n\
  \    return s + p.a;\n\
  \  }\n\
   }"
