(* Mutation harness for the speculation-safety tooling: seed a defect
   into otherwise-correct deopt metadata and assert the verifier flags
   it. Every corruption class the static verifier claims to rule out
   (SPEC01..SPEC10) is seeded here and must be caught with exactly that
   rule id; corruptions that are statically well-formed but semantically
   wrong (a lying rematerialized value) must instead be caught by the
   deopt oracle at runtime. Each static case first asserts the pristine
   compiled graph verifies cleanly — the harness doubly serves as the
   false-positive gate.

   Graphs are mutated either after offline compilation through the VM
   ([Vm.compiled_graph]; Direct tier reads terminators live from the
   installed graph, so runtime cases use it) or hand-built where a
   corruption needs a shape the compiler would never emit. *)

open Pea_bytecode
open Pea_rt
open Pea_vm
module Graph = Pea_ir.Graph
module Node = Pea_ir.Node
module Frame_state = Pea_ir.Frame_state
module Check = Pea_ir.Check
module Spec_check = Pea_analysis.Spec_check

let vint n = Value.Vint n

let vbool b = Value.Vbool b

let as_int = function
  | Some (Value.Vint n) -> n
  | _ -> Alcotest.fail "expected an int result"

let rules vs = List.sort_uniq compare (List.map (fun v -> v.Spec_check.v_rule) vs)

let check_clean g =
  Alcotest.(check (list string)) "pristine graph verifies cleanly" [] (rules (Spec_check.check g))

let expect_rule rule g =
  let found = rules (Spec_check.check g) in
  if not (List.mem rule found) then
    Alcotest.failf "expected %s, verifier reported [%s]" rule (String.concat "; " found)

(* A method whose compiled form carries a deopt with one scalar-replaced
   object (the paper's running example). *)
let remat_src =
  "class I { int val; }\n\
   class C {\n\
  \  static I global;\n\
  \  static int f(int x, boolean cold) {\n\
  \    I i = new I();\n\
  \    i.val = x;\n\
  \    if (cold) { C.global = i; }\n\
  \    return i.val + 1;\n\
  \  }\n\
   }"

let locked_src =
  "class Box { int v; }\n\
   class C {\n\
  \  static Box sink;\n\
  \  static int f(int x, boolean cold) {\n\
  \    Box b = new Box();\n\
  \    b.v = x;\n\
  \    synchronized (b) {\n\
  \      if (cold) { C.sink = b; }\n\
  \      b.v = b.v + 1;\n\
  \    }\n\
  \    return b.v;\n\
  \  }\n\
   }"

let setup ?(config = Test_env.apply { Jit.default_config with Jit.compile_threshold = 25 }) src =
  let program = Link.compile_source ~require_main:false src in
  (program, Vm.create ~config program)

(* Warm [C.f] until compiled and hand its installed graph over. *)
let compiled_graph_of ?config src warm_args =
  let program, vm = setup ?config src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f warm_args 40;
  match Vm.compiled_graph vm f with
  | Some g -> (program, vm, f, g)
  | None -> Alcotest.fail "method did not compile"

(* Rewrite the state of every Deopt terminator through [f]. *)
let mutate_deopt_states g f =
  let hit = ref 0 in
  Graph.iter_blocks
    (fun b ->
      match b.Graph.term with
      | Graph.Deopt d ->
          incr hit;
          b.Graph.term <- Graph.Deopt { d with Graph.d_state = f d.Graph.d_state }
      | _ -> ())
    g;
  Alcotest.(check bool) "a deopt state was mutated" true (!hit > 0)

(* ------------------------------------------------------------------ *)
(* Static mutations: one per verifier rule                             *)
(* ------------------------------------------------------------------ *)

(* Cases that corrupt scalar-replacement metadata (virtual-object
   descriptors) pin the optimization level to pea: under the matrix's
   MJVM_TEST_OPT=none axis PEA never runs, deopt states carry no
   descriptors, and the seeded corruption would silently be a no-op —
   the exact failure mode PR 7's matrix run flagged. The other cases
   corrupt axis-independent state (locals, bcis, invoke states) and
   keep following the axis. *)
let pea_config () =
  {
    (Test_env.apply { Jit.default_config with Jit.compile_threshold = 25 }) with
    Jit.opt = Jit.O_pea;
  }

(* SPEC01: strip the descriptors, leave the F_virtual references. *)
let test_drop_descriptor () =
  let _, _, _, g = compiled_graph_of ~config:(pea_config ()) remat_src [ vint 7; vbool false ] in
  check_clean g;
  mutate_deopt_states g (fun fs -> { fs with Frame_state.fs_virtuals = [] });
  expect_rule "SPEC01" g

(* SPEC02: point a state at a node id that exists nowhere. *)
let test_dangling_node () =
  let _, _, _, g = compiled_graph_of remat_src [ vint 7; vbool false ] in
  check_clean g;
  mutate_deopt_states g
    (Frame_state.map_values (function
      | Frame_state.F_node _ -> Frame_state.F_node 999983
      | v -> v));
  expect_rule "SPEC02" g

(* SPEC03: re-declare a virtual with a contradicting descriptor. *)
let test_conflicting_descriptor () =
  let _, _, _, g = compiled_graph_of ~config:(pea_config ()) remat_src [ vint 7; vbool false ] in
  check_clean g;
  mutate_deopt_states g (fun fs ->
      match fs.Frame_state.fs_virtuals with
      | (id, vd) :: _ ->
          let vd' = { vd with Frame_state.vd_lock = vd.Frame_state.vd_lock + 1 } in
          { fs with Frame_state.fs_virtuals = fs.Frame_state.fs_virtuals @ [ (id, vd') ] }
      | [] -> fs);
  expect_rule "SPEC03" g

(* SPEC04: erase the frame state of a call site. *)
let test_missing_invoke_state () =
  let src =
    "class C {\n\
    \  static int big(int x) { int a = x; a = a + 1; a = a * 2; a = a - 3; a = a * a;\n\
    \    a = a + x; a = a * 2; a = a - x; a = a + 7; a = a * 3; return a; }\n\
    \  static int f(int x, boolean cold) { if (cold) { return 0 - 1; } return C.big(x); }\n\
     }"
  in
  let config =
    Test_env.apply
      { Jit.default_config with Jit.compile_threshold = 25; Jit.max_callee_size = 1 }
  in
  let _, _, _, g = compiled_graph_of ~config src [ vint 7; vbool false ] in
  check_clean g;
  let hit = ref 0 in
  Graph.iter_blocks
    (fun b ->
      List.iter
        (fun (n : Node.t) ->
          match n.Node.op with
          | Node.Invoke _ ->
              incr hit;
              n.Node.fs <- None
          | _ -> ())
        (Graph.instr_list b))
    g;
  Alcotest.(check bool) "an invoke was stripped" true (!hit > 0);
  expect_rule "SPEC04" g

(* SPEC05: drift a virtual's recorded lock depth off the lock stacks. *)
let test_lock_depth_drift () =
  let _, _, _, g = compiled_graph_of ~config:(pea_config ()) locked_src [ vint 7; vbool false ] in
  check_clean g;
  mutate_deopt_states g (fun fs ->
      {
        fs with
        Frame_state.fs_virtuals =
          List.map
            (fun (id, vd) -> (id, { vd with Frame_state.vd_lock = vd.Frame_state.vd_lock + 1 }))
            fs.Frame_state.fs_virtuals;
      });
  expect_rule "SPEC05" g

(* Hand-built graphs, for shapes the compiler never emits. *)
let hand_graph program =
  let m = Link.find_method program "C" "f" in
  let g = Graph.create m in
  let b = Graph.new_block g in
  b.Graph.term <- Graph.Return None;
  (m, g, b)

let mk_fs ?(bci = 0) ?(virtuals = []) ?outer m =
  {
    Frame_state.fs_method = m;
    fs_bci = bci;
    fs_locals = [||];
    fs_stack = [];
    fs_locks = [];
    fs_outer = outer;
    fs_virtuals = virtuals;
  }

(* SPEC06: a virtual that a dominating state already dropped
   (materialized) is declared virtual again downstream. *)
let test_escape_regression () =
  let program = Link.compile_source ~require_main:false remat_src in
  let m, g, b = hand_graph program in
  let cls = Link.find_class program "I" in
  let vd =
    { Frame_state.vd_shape = Frame_state.Obj_shape cls; vd_fields = [||]; vd_lock = 0 }
  in
  let declare = mk_fs ~virtuals:[ (1, vd) ] m in
  let dropped = mk_fs m in
  let n1 = Graph.append g b (Node.Const (Frame_state.Cint 0)) in
  let n2 = Graph.append g b (Node.Const (Frame_state.Cint 0)) in
  let n3 = Graph.append g b (Node.Const (Frame_state.Cint 0)) in
  n1.Node.fs <- Some declare;
  n2.Node.fs <- Some dropped;
  n3.Node.fs <- Some declare;
  expect_rule "SPEC06" g

(* SPEC07: an OSR graph that loses a local-slot transfer. *)
let test_transfer_map_hole () =
  let src =
    "class C {\n\
    \  static int f(int n) {\n\
    \    int acc = 0;\n\
    \    int i = 0;\n\
    \    while (i < n) { acc = acc + i; i = i + 1; }\n\
    \    return acc;\n\
    \  }\n\
     }"
  in
  let program = Link.compile_source ~require_main:false src in
  let f = Link.find_method program "C" "f" in
  let profile = Profile.create program in
  let config = Test_env.apply Jit.default_config in
  (* find the loop header the interpreter would OSR at: the only
     back-edge target; build directly at bci of the while condition *)
  let compiled =
    Jit.compile_osr config program profile f
      ~entry_bci:
        (let code = f.Classfile.mth_code in
         let header = ref (-1) in
         Array.iteri
           (fun src instr ->
             match instr with
             | Classfile.Goto t | Classfile.If_true t | Classfile.If_false t ->
                 if t <= src && !header < 0 then header := t
             | _ -> ())
           code;
         !header)
  in
  let g = compiled.Jit.graph in
  check_clean g;
  (match g.Graph.params with
  | _ :: rest -> g.Graph.params <- rest
  | [] -> Alcotest.fail "OSR graph has no params");
  expect_rule "SPEC07" g;
  (* satellite: the structural IR checker must reject it too *)
  Alcotest.(check bool) "IR checker rejects the malformed transfer map" true
    (Check.check g <> [])

(* SPEC08: deopt provenance pointing at a non-branch bytecode. *)
let test_edge_off_branch () =
  let _, _, f, g = compiled_graph_of remat_src [ vint 7; vbool false ] in
  check_clean g;
  let hit = ref 0 in
  Graph.iter_blocks
    (fun b ->
      match b.Graph.term with
      | Graph.Deopt ({ d_edge = Some e; _ } as d) ->
          incr hit;
          b.Graph.term <- Graph.Deopt { d with Graph.d_edge = Some { e with Graph.de_src = 0 } }
      | _ -> ())
    g;
  Alcotest.(check bool) "a deopt edge was bent" true (!hit > 0);
  (* bci 0 of C.f is the allocation, not a branch *)
  Alcotest.(check bool) "bci 0 is not a branch" true
    (match f.Classfile.mth_code.(0) with
    | Classfile.If_true _ | Classfile.If_false _ -> false
    | _ -> true);
  expect_rule "SPEC08" g

(* SPEC09: resume bci outside the method's code. *)
let test_resume_out_of_range () =
  let _, _, _, g = compiled_graph_of remat_src [ vint 7; vbool false ] in
  check_clean g;
  mutate_deopt_states g (fun fs -> { fs with Frame_state.fs_bci = 9999 });
  expect_rule "SPEC09" g

(* SPEC10: an outer frame that does not resume just after an invoke. *)
let test_resume_not_after_invoke () =
  let program = Link.compile_source ~require_main:false remat_src in
  let m, g, b = hand_graph program in
  let outer = mk_fs ~bci:0 m in
  let inner = mk_fs ~bci:1 ~outer m in
  let n = Graph.append g b (Node.Const (Frame_state.Cint 0)) in
  n.Node.fs <- Some inner;
  expect_rule "SPEC10" g

(* ------------------------------------------------------------------ *)
(* Dynamic-only mutations: statically well-formed, caught by the       *)
(* oracle at the next deopt                                            *)
(* ------------------------------------------------------------------ *)

(* Direct tier (the installed graph is consulted on every run; the
   closure tier captures terminators at translation time), oracle on. *)
let dynamic_config () =
  Test_env.apply
    {
      Jit.default_config with
      Jit.compile_threshold = 25;
      Jit.oracle = true;
      Jit.exec_tier = Jit.Direct;
    }

let expect_divergence ?(src = remat_src) ?(config = dynamic_config ()) ~needle mutate =
  let program, vm = setup ~config src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 7; vbool false ] 40;
  let g =
    match Vm.compiled_graph vm f with Some g -> g | None -> Alcotest.fail "not compiled"
  in
  mutate g;
  (* the corruption must be invisible to the static verifier — that is
     what makes it the oracle's job *)
  Alcotest.(check (list string)) "statically clean" [] (rules (Spec_check.check g));
  match Vm.invoke vm f [ vint 123; vbool true ] with
  | exception Oracle.Divergence dv ->
      let msg = Oracle.string_of_divergence dv in
      if not (Test_support.contains msg needle) then
        Alcotest.failf "divergence %S does not mention %S" msg needle
  | r ->
      Alcotest.failf "oracle missed the corruption; run returned %d (deopts=%d)" (as_int r)
        (Stats.get (Vm.stats vm) Stats.deopts)

(* a rematerialized local that lies about its value *)
let test_remat_local_lie () =
  expect_divergence ~needle:"local 0" (fun g ->
      mutate_deopt_states g (fun fs ->
          let locals = Array.copy fs.Frame_state.fs_locals in
          Alcotest.(check bool) "has a local" true (Array.length locals > 0);
          locals.(0) <- Frame_state.F_const (Frame_state.Cint 999);
          { fs with Frame_state.fs_locals = locals }))

(* a descriptor whose field value lies: the rematerialized object escapes
   through the global with the wrong contents. Pinned to pea for the
   same reason as the SPEC01/03/05 cases: without scalar replacement
   there is no descriptor to corrupt. *)
let test_descriptor_field_lie () =
  expect_divergence
    ~config:{ (dynamic_config ()) with Jit.opt = Jit.O_pea }
    ~needle:"field"
    (fun g ->
      mutate_deopt_states g (fun fs ->
          {
            fs with
            Frame_state.fs_virtuals =
              List.map
                (fun (id, vd) ->
                  let fields = Array.copy vd.Frame_state.vd_fields in
                  Alcotest.(check bool) "has a field" true (Array.length fields > 0);
                  fields.(0) <- Frame_state.F_const (Frame_state.Cint 777);
                  (id, { vd with Frame_state.vd_fields = fields }))
                fs.Frame_state.fs_virtuals;
          }))

(* a phantom operand on the resume stack *)
let test_stack_smash () =
  expect_divergence ~needle:"operand stack" (fun g ->
      mutate_deopt_states g (fun fs ->
          {
            fs with
            Frame_state.fs_stack =
              Frame_state.F_const (Frame_state.Cint 5) :: fs.Frame_state.fs_stack;
          }))

let () =
  Alcotest.run "mutation"
    [
      ( "static",
        [
          Alcotest.test_case "SPEC01 dropped descriptor" `Quick test_drop_descriptor;
          Alcotest.test_case "SPEC02 dangling node" `Quick test_dangling_node;
          Alcotest.test_case "SPEC03 conflicting descriptor" `Quick test_conflicting_descriptor;
          Alcotest.test_case "SPEC04 missing invoke state" `Quick test_missing_invoke_state;
          Alcotest.test_case "SPEC05 lock depth drift" `Quick test_lock_depth_drift;
          Alcotest.test_case "SPEC06 escape regression" `Quick test_escape_regression;
          Alcotest.test_case "SPEC07 transfer-map hole" `Quick test_transfer_map_hole;
          Alcotest.test_case "SPEC08 edge off branch" `Quick test_edge_off_branch;
          Alcotest.test_case "SPEC09 resume out of range" `Quick test_resume_out_of_range;
          Alcotest.test_case "SPEC10 resume not after invoke" `Quick test_resume_not_after_invoke;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "lying rematerialized local" `Quick test_remat_local_lie;
          Alcotest.test_case "lying descriptor field" `Quick test_descriptor_field_lie;
          Alcotest.test_case "phantom stack operand" `Quick test_stack_smash;
        ] );
    ]
