(* Unit tests for the IR layer: graph builder (SSA construction, loops,
   critical edges, frame states), dominators, loop forest, checker and
   printer. *)

open Pea_bytecode
open Pea_ir

let build_main src =
  let program = Link.compile_source src in
  (program, Builder.build (Link.entry_exn program))

let build_method src cls name =
  let program = Link.compile_source ~require_main:false src in
  (program, Builder.build (Link.find_method program cls name))

let main_wrap body = Printf.sprintf "class Main { static int main() { %s } }" body

let count_ops g p =
  let n = ref 0 in
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) then begin
        List.iter (fun (x : Node.t) -> if p x.Node.op then incr n) b.Graph.phis;
        Pea_support.Dyn_array.iter (fun (x : Node.t) -> if p x.Node.op then incr n) b.Graph.instrs
      end)
    g;
  !n

let is_phi = function Node.Phi _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_straight_line () =
  let _, g = build_main (main_wrap "int a = 1; int b = 2; return a + b;") in
  Check.check_exn g;
  Alcotest.(check int) "no phis" 0 (count_ops g is_phi)

let test_if_phi () =
  let _, g =
    build_main (main_wrap "int x = 0; if (1 < 2) x = 1; else x = 2; return x;")
  in
  Check.check_exn g;
  Alcotest.(check int) "one phi for x" 1 (count_ops g is_phi)

let test_loop_phis_simplified () =
  (* acc and i are loop-carried: exactly two loop phis survive *)
  let _, g =
    build_main (main_wrap "int i = 0; int acc = 0; while (i < 9) { acc = acc + i; i = i + 1; } return acc;")
  in
  Check.check_exn g;
  Alcotest.(check int) "two loop phis" 2 (count_ops g is_phi);
  (* invariant: a loop header block exists *)
  let has_header = ref false in
  Graph.iter_blocks (fun b -> if b.Graph.kind = Graph.Loop_header then has_header := true) g;
  Alcotest.(check bool) "has loop header" true !has_header

let test_loop_invariant_no_phi () =
  (* x never changes in the loop: the eager phi must be simplified away *)
  let _, g =
    build_main
      (main_wrap "int x = 7; int i = 0; while (i < 5) { i = i + x; } return x;")
  in
  Check.check_exn g;
  (* only i is loop-carried *)
  Alcotest.(check int) "one phi" 1 (count_ops g is_phi)

let test_critical_edges_split () =
  (* every predecessor of a block with >1 preds must have exactly one
     successor (critical edges split) *)
  let _, g =
    build_main
      (main_wrap
         "int r = 0; int i = 0;\n\
          while (i < 10) { if (i % 2 == 0) r = r + 1; i = i + 1; }\n\
          return r;")
  in
  Check.check_exn g;
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) && List.length b.Graph.preds > 1 then
        List.iter
          (fun p ->
            let np = List.length (Graph.successors (Graph.block g p).Graph.term) in
            if np <> 1 then
              Alcotest.failf "B%d (pred of merge B%d) has %d successors" p b.Graph.b_id np)
          b.Graph.preds)
    g

let test_frame_states_on_side_effects () =
  let _, g =
    build_main
      "class Main { static int g; static int main() { g = 41; g = g + 1; return g; } }"
  in
  Check.check_exn g;
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) then
        Pea_support.Dyn_array.iter
          (fun (n : Node.t) ->
            if Node.has_side_effect n.Node.op && n.Node.fs = None then
              Alcotest.failf "node v%d has no frame state" n.Node.id)
          b.Graph.instrs)
    g

let test_frame_state_bci_points_after () =
  (* the frame state of a store describes the state after it *)
  let program, g = build_main "class Main { static int g; static int main() { g = 1; return g; } }" in
  ignore program;
  let found = ref false in
  Graph.iter_blocks
    (fun b ->
      Pea_support.Dyn_array.iter
        (fun (n : Node.t) ->
          match n.Node.op, n.Node.fs with
          | Node.Store_static _, Some fs ->
              found := true;
              Alcotest.(check string)
                "method" "Main.main"
                (Classfile.qualified_name fs.Frame_state.fs_method);
              Alcotest.(check (list Alcotest.string)) "empty stack after store" []
                (List.map Frame_state.string_of_fs_value fs.Frame_state.fs_stack)
          | _ -> ())
        b.Graph.instrs)
    g;
  Alcotest.(check bool) "store found" true !found

let test_entry_loop_header () =
  (* a while loop as the first statement: bci 0 is a jump target; the
     builder must synthesize a clean entry *)
  let _, g =
    build_method
      "class C { static int f(int n) { while (n > 0) { n = n - 1; } return n; } }"
      "C" "f"
  in
  Check.check_exn g;
  Alcotest.(check (list Alcotest.int)) "entry has no preds" []
    (Graph.block g Graph.entry_id).Graph.preds

let test_undef_locals () =
  (* declared-but-unassigned locals read as undef without crashing the
     builder *)
  let _, g = build_main (main_wrap "int x; if (1 < 2) x = 1; return 0;") in
  Check.check_exn g

let test_locks_in_frame_states () =
  let _, g =
    build_method
      "class C { int v; static int f(C c) { synchronized (c) { c.v = 1; } return c.v; } }"
      "C" "f"
  in
  Check.check_exn g;
  (* the store inside the synchronized region must record the held lock *)
  let found = ref false in
  Graph.iter_blocks
    (fun b ->
      Pea_support.Dyn_array.iter
        (fun (n : Node.t) ->
          match n.Node.op, n.Node.fs with
          | Node.Store_field _, Some fs ->
              found := true;
              Alcotest.(check int) "one lock held" 1 (List.length fs.Frame_state.fs_locks)
          | _ -> ())
        b.Graph.instrs)
    g;
  Alcotest.(check bool) "store found" true !found

(* ------------------------------------------------------------------ *)
(* Dominators and loops                                                *)
(* ------------------------------------------------------------------ *)

let diamond_src =
  main_wrap "int x = 0; if (1 < 2) x = 1; else x = 2; return x;"

let test_dominators_diamond () =
  let _, g = build_main diamond_src in
  let doms = Dominators.compute g in
  (* entry dominates everything *)
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) then
        Alcotest.(check bool)
          (Printf.sprintf "entry dominates B%d" b.Graph.b_id)
          true
          (Dominators.dominates doms Graph.entry_id b.Graph.b_id))
    g;
  (* no non-entry block dominates the entry *)
  Graph.iter_blocks
    (fun b ->
      if b.Graph.b_id <> Graph.entry_id then
        Alcotest.(check bool)
          (Printf.sprintf "B%d does not dominate entry" b.Graph.b_id)
          false
          (Dominators.dominates doms b.Graph.b_id Graph.entry_id))
    g

let test_loop_forest () =
  let _, g =
    build_main
      (main_wrap
         "int acc = 0; int i = 0;\n\
          while (i < 5) { int j = 0; while (j < 5) { acc = acc + 1; j = j + 1; } i = i + 1; }\n\
          return acc;")
  in
  let doms = Dominators.compute g in
  let loops = Loops.compute g doms in
  Alcotest.(check int) "two loops" 2 (Loops.n_loops loops);
  (* one loop must be nested in the other *)
  let parents =
    Hashtbl.fold (fun _ l acc -> l.Loops.parent :: acc) loops.Loops.loops []
  in
  let nested = List.filter Option.is_some parents in
  Alcotest.(check int) "one nested loop" 1 (List.length nested)

let test_no_loops () =
  let _, g = build_main diamond_src in
  let doms = Dominators.compute g in
  let loops = Loops.compute g doms in
  Alcotest.(check int) "no loops" 0 (Loops.n_loops loops)

(* ------------------------------------------------------------------ *)
(* Checker and printer                                                 *)
(* ------------------------------------------------------------------ *)

let test_checker_catches_dangling_use () =
  let _, g = build_main (main_wrap "return 1 + 2;") in
  (* corrupt: reference a nonexistent node from the terminator *)
  let entry = Graph.block g Graph.entry_id in
  let rec last_block b = match b.Graph.term with Graph.Goto t -> last_block (Graph.block g t) | _ -> b in
  let b = last_block entry in
  b.Graph.term <- Graph.Return (Some 99999);
  match Check.check g with
  | [] -> Alcotest.fail "checker accepted a dangling use"
  | _ -> ()

let test_checker_catches_phi_arity () =
  let _, g = build_main (main_wrap "int x = 0; if (1 < 2) x = 1; else x = 2; return x;") in
  let broken = ref false in
  Graph.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Node.t) ->
          match phi.Node.op with
          | Node.Phi p ->
              p.Node.inputs <- Array.sub p.Node.inputs 0 1;
              broken := true
          | _ -> ())
        b.Graph.phis)
    g;
  if !broken then
    match Check.check g with
    | [] -> Alcotest.fail "checker accepted wrong phi arity"
    | _ -> ()

let contains s sub =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_checker_invoke_frame_state_rule () =
  (* stripping the frame state from an invoke violates the default rules
     but is accepted with [require_frame_states:false] *)
  let _, g =
    build_main
      "class C { static int f() { return 1; } }\n\
       class Main { static int main() { return C.f(); } }"
  in
  Check.check_exn g;
  let stripped = ref 0 in
  Graph.iter_blocks
    (fun b ->
      Pea_support.Dyn_array.iter
        (fun (n : Node.t) ->
          match n.Node.op with
          | Node.Invoke _ ->
              n.Node.fs <- None;
              incr stripped
          | _ -> ())
        b.Graph.instrs)
    g;
  Alcotest.(check bool) "an invoke was stripped" true (!stripped > 0);
  (match Check.check g with
  | [] -> Alcotest.fail "checker accepted an invoke without frame state"
  | _ -> ());
  Alcotest.(check (list Alcotest.string))
    "accepted without the invoke rule" []
    (Check.check ~require_frame_states:false g)

let test_checker_catches_dominance_violation () =
  (* redirect both phi inputs to a value computed in only one branch: the
     use at the end of the other predecessor is no longer dominated *)
  let _, g =
    build_method
      "class C { static int f(int a) { int x = 0; if (a < 2) x = a + 1; else x = 2; return x; } }"
      "C" "f"
  in
  Check.check_exn g;
  let add_id = ref (-1) in
  Graph.iter_blocks
    (fun b ->
      Pea_support.Dyn_array.iter
        (fun (n : Node.t) ->
          match n.Node.op with
          | Node.Arith (Node.Add, _, _) -> add_id := n.Node.id
          | _ -> ())
        b.Graph.instrs)
    g;
  Alcotest.(check bool) "found the add" true (!add_id >= 0);
  let broken = ref false in
  Graph.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Node.t) ->
          match phi.Node.op with
          | Node.Phi p when Array.length p.Node.inputs = 2 ->
              p.Node.inputs <- [| !add_id; !add_id |];
              broken := true
          | _ -> ())
        b.Graph.phis)
    g;
  Alcotest.(check bool) "a phi was corrupted" true !broken;
  match Check.check g with
  | [] -> Alcotest.fail "checker accepted a non-dominated phi input"
  | errs ->
      Alcotest.(check bool) "mentions dominance" true
        (List.exists (fun e -> contains e "dominated") errs)

let test_checker_catches_missing_virtual_descriptor () =
  (* a frame state referencing a virtual object must carry a descriptor *)
  let _, g =
    build_main "class Main { static int g; static int main() { g = 1; return g; } }"
  in
  Check.check_exn g;
  let broken = ref false in
  Graph.iter_blocks
    (fun b ->
      Pea_support.Dyn_array.iter
        (fun (n : Node.t) ->
          match n.Node.fs with
          | Some fs when not !broken ->
              n.Node.fs <-
                Some
                  { fs with
                    Frame_state.fs_stack = Frame_state.F_virtual 42 :: fs.Frame_state.fs_stack
                  };
              broken := true
          | _ -> ())
        b.Graph.instrs)
    g;
  Alcotest.(check bool) "a frame state was corrupted" true !broken;
  match Check.check g with
  | [] -> Alcotest.fail "checker accepted an undescribed virtual object"
  | errs ->
      Alcotest.(check bool) "mentions descriptor" true
        (List.exists (fun e -> contains e "descriptor") errs)

let test_printer_shows_structure () =
  (* the printed IR names blocks, kinds, phis and frame states *)
  let _, g =
    build_main
      (main_wrap
         "class never used placeholder" |> fun _ ->
       "class Main { static int g; static int main() { int i = 0; int acc = 0; while (i < 3) { Main.g = acc; acc = acc + i; i = i + 1; } return acc; } }")
  in
  let s = Printer.to_string g in
  let has sub =
    let n = String.length sub in
    let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "loop header shown" true (has "(loop header)");
  Alcotest.(check bool) "phi shown" true (has "phi(");
  Alcotest.(check bool) "frame state shown" true (has "@Main.main:");
  Alcotest.(check bool) "store shown" true (has "Main.g =")

let test_printer_output () =
  let _, g = build_main (main_wrap "int x = 1; return x + 2;") in
  let s = Printer.to_string g in
  Alcotest.(check bool) "mentions graph name" true (contains s "Main.main");
  let dot = Printer.to_dot g in
  Alcotest.(check bool) "dot output" true (contains dot "digraph")

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "straight line" `Quick test_straight_line;
          Alcotest.test_case "if creates phi" `Quick test_if_phi;
          Alcotest.test_case "loop phis" `Quick test_loop_phis_simplified;
          Alcotest.test_case "invariant phi simplified" `Quick test_loop_invariant_no_phi;
          Alcotest.test_case "critical edges split" `Quick test_critical_edges_split;
          Alcotest.test_case "frame states attached" `Quick test_frame_states_on_side_effects;
          Alcotest.test_case "frame state contents" `Quick test_frame_state_bci_points_after;
          Alcotest.test_case "entry loop header" `Quick test_entry_loop_header;
          Alcotest.test_case "undef locals" `Quick test_undef_locals;
          Alcotest.test_case "locks in frame states" `Quick test_locks_in_frame_states;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "loop forest" `Quick test_loop_forest;
          Alcotest.test_case "no loops" `Quick test_no_loops;
        ] );
      ( "checker",
        [
          Alcotest.test_case "dangling use" `Quick test_checker_catches_dangling_use;
          Alcotest.test_case "phi arity" `Quick test_checker_catches_phi_arity;
          Alcotest.test_case "invoke frame-state rule" `Quick test_checker_invoke_frame_state_rule;
          Alcotest.test_case "dominance violation" `Quick test_checker_catches_dominance_violation;
          Alcotest.test_case "missing virtual descriptor" `Quick
            test_checker_catches_missing_virtual_descriptor;
          Alcotest.test_case "printer" `Quick test_printer_output;
          Alcotest.test_case "printer structure" `Quick test_printer_shows_structure;
        ] );
    ]
