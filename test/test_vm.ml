(* Differential testing of the tiered VM: for every corpus program, the
   interpreter-only run is the reference semantics; compiled runs under
   every optimization level must produce identical results and prints.
   Additionally, the paper's central invariant is checked: partial escape
   analysis never increases the dynamic number of allocations or monitor
   operations ("there will always be at most as many dynamic allocations
   as in the original code", §4). *)

open Pea_rt
open Pea_vm

let string_of_result = function
  | None -> "void"
  | Some v -> Value.string_of_value v

let config opt ~threshold =
  Test_env.apply { Jit.default_config with Jit.opt; compile_threshold = threshold }

let run_vm src cfg ~iterations =
  let program = Pea_bytecode.Link.compile_source src in
  let vm = Vm.create ~config:cfg program in
  Vm.run_main_iterations vm iterations

let opt_name = function Jit.O_none -> "none" | Jit.O_ea -> "ea" | Jit.O_pea -> "pea"

(* One corpus program, one optimization level: semantics must match the
   interpreter across repeated iterations (cold -> warm -> compiled). *)
let check_semantics name src opt () =
  let reference = Run.run_source src in
  let iterations = 6 in
  List.iter
    (fun threshold ->
      let r = run_vm src (config opt ~threshold) ~iterations in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s/t%d return" name (opt_name opt) threshold)
        (string_of_result reference.Run.return_value)
        (string_of_result r.Vm.return_value);
      let expected_prints =
        List.concat (List.init iterations (fun _ -> reference.Run.printed))
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s/%s/t%d prints" name (opt_name opt) threshold)
        (List.map Value.string_of_value expected_prints)
        (List.map Value.string_of_value r.Vm.printed))
    [ 0; 3 ]

(* Allocation / monitor monotonicity: O_pea <= O_ea <= ... is not required
   in general, but O_pea <= O_none and O_ea <= O_none must hold. *)
let check_monotonicity name src () =
  let iterations = 8 in
  let measure opt = run_vm src (config opt ~threshold:0) ~iterations in
  let none = measure Jit.O_none in
  let ea = measure Jit.O_ea in
  let pea = measure Jit.O_pea in
  let allocs (r : Vm.result) = r.Vm.stats.Stats.s_allocations in
  let monitors (r : Vm.result) = r.Vm.stats.Stats.s_monitor_ops in
  if allocs pea > allocs none then
    Alcotest.failf "%s: PEA increased allocations (%d > %d)" name (allocs pea) (allocs none);
  if allocs ea > allocs none then
    Alcotest.failf "%s: EA increased allocations (%d > %d)" name (allocs ea) (allocs none);
  if monitors pea > monitors none then
    Alcotest.failf "%s: PEA increased monitor ops (%d > %d)" name (monitors pea) (monitors none);
  (* PEA subsumes whole-method EA on allocation removal *)
  if allocs pea > allocs ea then
    Alcotest.failf "%s: PEA removed fewer allocations than EA (%d > %d)" name (allocs pea)
      (allocs ea)

let semantics_cases =
  List.concat_map
    (fun (name, src) ->
      List.map
        (fun opt ->
          Alcotest.test_case (Printf.sprintf "%s [%s]" name (opt_name opt)) `Quick
            (check_semantics name src opt))
        [ Jit.O_none; Jit.O_ea; Jit.O_pea ])
    Programs.corpus

let monotonicity_cases =
  List.map
    (fun (name, src) -> Alcotest.test_case name `Quick (check_monotonicity name src))
    Programs.corpus

(* PEA should fully remove the allocations of the classic fully-local
   example once the method is compiled. *)
let test_scalar_replacement_wins () =
  if Test_env.opt_forced () then ()
  else
  let src =
    "class P { int x; int y; P(int a, int b) { x = a; y = b; } }\n\
     class Main {\n\
    \  static int compute(int i) { P p = new P(i, i * 2); return p.x + p.y; }\n\
    \  static int main() { int acc = 0; int i = 0; while (i < 100) { acc = acc + compute(i); i = i + 1; } return acc; }\n\
     }"
  in
  let none = run_vm src (config Jit.O_none ~threshold:0) ~iterations:2 in
  let pea = run_vm src (config Jit.O_pea ~threshold:0) ~iterations:2 in
  Alcotest.(check string)
    "same result"
    (string_of_result none.Vm.return_value)
    (string_of_result pea.Vm.return_value);
  if pea.Vm.stats.Stats.s_allocations >= none.Vm.stats.Stats.s_allocations then
    Alcotest.failf "expected PEA to remove allocations (%d vs %d)"
      pea.Vm.stats.Stats.s_allocations none.Vm.stats.Stats.s_allocations

(* Lock elision: a synchronized method on a non-escaping receiver loses its
   monitor operations under PEA. *)
let test_lock_elision () =
  if Test_env.opt_forced () then ()
  else
  let src =
    "class G { int v; synchronized int addTo(int x) { v = v + x; return v; } }\n\
     class Main {\n\
    \  static int once(int i) { G g = new G(); g.addTo(i); return g.addTo(i); }\n\
    \  static int main() { int acc = 0; int i = 0; while (i < 50) { acc = acc + once(i); i = i + 1; } return acc; }\n\
     }"
  in
  let none = run_vm src (config Jit.O_none ~threshold:0) ~iterations:2 in
  let pea = run_vm src (config Jit.O_pea ~threshold:0) ~iterations:2 in
  Alcotest.(check string)
    "same result"
    (string_of_result none.Vm.return_value)
    (string_of_result pea.Vm.return_value);
  if pea.Vm.stats.Stats.s_monitor_ops >= none.Vm.stats.Stats.s_monitor_ops then
    Alcotest.failf "expected PEA to elide monitors (%d vs %d)" pea.Vm.stats.Stats.s_monitor_ops
      none.Vm.stats.Stats.s_monitor_ops

let () =
  Alcotest.run "vm"
    [
      ("semantics", semantics_cases);
      ("monotonicity", monotonicity_cases);
      ( "wins",
        [
          Alcotest.test_case "scalar replacement removes allocations" `Quick
            test_scalar_replacement_wins;
          Alcotest.test_case "lock elision removes monitor ops" `Quick test_lock_elision;
        ] );
    ]
