(* Observability tests: the metrics registry, the trace ring buffer and
   sinks, trace determinism (across runs and across execution tiers), the
   [Explain] report, and the zero-overhead guarantee — tracing on must
   never change results or deterministic counters. *)

open Pea_rt
open Pea_vm
module Metrics = Pea_obs.Metrics
module Event = Pea_obs.Event
module Trace = Pea_obs.Trace

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let schema = Metrics.make_schema () in
  let a = Metrics.counter schema "alpha" in
  let b = Metrics.counter schema ~label:"brv" "bravo" in
  let h = Metrics.histogram schema "sizes" in
  let t = Metrics.create schema in
  Alcotest.(check int) "zeroed" 0 (Metrics.get t a);
  Metrics.incr t a;
  Metrics.add t a 4;
  Metrics.set t b 9;
  Alcotest.(check int) "incr+add" 5 (Metrics.get t a);
  Alcotest.(check int) "set" 9 (Metrics.get t b);
  Metrics.observe t h 3;
  Metrics.observe t h 10;
  Metrics.observe t h 5;
  let v = Metrics.hist t h in
  Alcotest.(check int) "h_count" 3 v.Metrics.h_count;
  Alcotest.(check int) "h_sum" 18 v.Metrics.h_sum;
  Alcotest.(check int) "h_min" 3 v.Metrics.h_min;
  Alcotest.(check int) "h_max" 10 v.Metrics.h_max;
  (* dump preserves declaration order *)
  Alcotest.(check (list string)) "dump order" [ "alpha"; "bravo"; "sizes" ]
    (List.map fst (Metrics.dump t));
  Alcotest.(check string) "to_json"
    "{\"counters\":{\"alpha\":5,\"bravo\":9},\"histograms\":{\"sizes\":{\"count\":3,\"sum\":18,\"min\":3,\"max\":10}}}"
    (Metrics.to_json t);
  Alcotest.(check string) "pp_counters uses labels" "alpha=5 brv=9"
    (Format.asprintf "%a" Metrics.pp_counters t);
  Metrics.reset t;
  Alcotest.(check int) "reset counter" 0 (Metrics.get t a);
  Alcotest.(check int) "reset histogram" 0 (Metrics.hist t h).Metrics.h_count

let test_metrics_sealed () =
  let schema = Metrics.make_schema () in
  let _ = Metrics.counter schema "only" in
  let _ = Metrics.create schema in
  Alcotest.check_raises "late declaration rejected"
    (Invalid_argument "Metrics: declaring \"late\" after the schema was sealed by create")
    (fun () -> ignore (Metrics.counter schema "late"))

(* ------------------------------------------------------------------ *)
(* Ring buffer and span                                                *)
(* ------------------------------------------------------------------ *)

let ev i = Event.Compile_start { meth = Printf.sprintf "M.m%d" i; opt = "pea" }

let test_ring_overflow () =
  let t = Trace.create ~capacity:3 () in
  for i = 0 to 4 do
    Trace.emit t (ev i)
  done;
  Alcotest.(check int) "length capped" 3 (Trace.length t);
  Alcotest.(check int) "dropped counted" 2 (Trace.dropped t);
  Alcotest.(check (list int)) "oldest dropped first" [ 2; 3; 4 ]
    (List.map (fun e -> e.Trace.e_seq) (Trace.entries t));
  Trace.clear t;
  Alcotest.(check int) "clear" 0 (Trace.length t)

let with_tracer ?capacity f = Test_support.with_tracer ?capacity f

let test_span_pairs () =
  with_tracer (fun t ->
      Alcotest.(check int) "span result" 7 (Trace.span ~meth:"M.m" "build" (fun () -> 7));
      (match
         Trace.span ~meth:"M.m" "inline" (fun () -> failwith "boom")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected the span body to raise");
      let names = List.map (fun e -> Event.name e.Trace.e_event) (Trace.entries t) in
      Alcotest.(check (list string)) "end emitted even on raise"
        [ "phase_start"; "phase_end"; "phase_start"; "phase_end" ]
        names);
  (* with no tracer installed, span is pass-through *)
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "span off" 7 (Trace.span ~meth:"M.m" "build" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Trace determinism on the VM                                         *)
(* ------------------------------------------------------------------ *)

(* Exercises the whole event surface: PEA virtualize/materialize in a
   compiled loop, a pruned branch that deopts with a virtual object in
   the frame state, recompilation, and (on the closure tier) inline-cache
   seeding. *)
let scenario_src = Programs.deopt_trap

(* threshold 22: enough interpreted samples for the pruner (min 20) with
   the escape branch never taken, so the compiled code deopts at
   iteration 24 — see [gen_program_deopt] in test_properties.ml *)
let run_traced ?(src = scenario_src) ?(iterations = 30) ?(threshold = 22) tier =
  let program = Pea_bytecode.Link.compile_source src in
  (* OSR off: its eager compile would tier up after ~5 invocations (the
     loop runs 20 back edges per call), before the pruner has enough
     branch samples — this scenario pins the invocation-count path and
     its deopt/recompile surface; OSR tracing is covered in test_osr.ml *)
  let config =
    {
      Jit.default_config with
      Jit.compile_threshold = threshold;
      exec_tier = tier;
      osr = false;
    }
  in
  let vm = Vm.create ~config program in
  with_tracer (fun t ->
      Trace.set_clock t (fun () -> Stats.get (Vm.stats vm) Stats.cycles);
      let r = Vm.run_main_iterations vm iterations in
      (r, Trace.jsonl_string t, Trace.chrome_string t, Trace.entries t))

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_golden_jsonl_deterministic () =
  let _, j1, _, _ = run_traced Jit.Closure in
  let _, j2, _, _ = run_traced Jit.Closure in
  Alcotest.(check string) "identical across runs" j1 j2;
  let has name = count_sub j1 (Printf.sprintf "\"ev\":\"%s\"" name) > 0 in
  List.iter
    (fun name -> Alcotest.(check bool) ("has " ^ name) true (has name))
    [
      "tier_promote";
      "compile_start";
      "phase_start";
      "pea_virtualize";
      "pea_materialize";
      "deopt";
      "compile_end";
    ]

(* Cost-model cycles are tier-independent, so after filtering the events
   only one tier emits (inline-cache transitions, the closure-tier
   promotion), the (cycles, event) stream must be identical across tiers
   — sequence numbers shift, payloads and timestamps may not. *)
let test_cross_tier_determinism () =
  let _, _, _, ed = run_traced Jit.Direct in
  let _, _, _, ec = run_traced Jit.Closure in
  let tier_independent e =
    match e.Trace.e_event with
    | Event.Ic_transition _ -> false
    | Event.Tier_promote { tier = "closure"; _ } -> false
    | _ -> true
  in
  let key e = (e.Trace.e_cycles, e.Trace.e_event) in
  let kd = List.map key (List.filter tier_independent ed) in
  let kc = List.map key (List.filter tier_independent ec) in
  Alcotest.(check int) "same event count" (List.length kd) (List.length kc);
  Alcotest.(check bool) "same (cycles, event) stream" true (kd = kc)

let test_chrome_structure () =
  let _, _, chrome, entries = run_traced Jit.Closure in
  Alcotest.(check bool) "header" true
    (String.length chrome > 16 && String.sub chrome 0 16 = "{\"traceEvents\":[");
  Alcotest.(check int) "one record per entry"
    (List.length entries)
    (count_sub chrome "\"cat\":\"mjvm\"");
  Alcotest.(check int) "balanced spans"
    (count_sub chrome "\"ph\":\"B\"")
    (count_sub chrome "\"ph\":\"E\"");
  (* every record carries the deterministic clock *)
  Alcotest.(check int) "cycles in args" (List.length entries) (count_sub chrome "\"cycles\":")

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_src =
  "class Key { int k1; int k2; }\n\
   class Cache {\n\
  \  static Key hit;\n\
  \  static int getValue(int a, int b, boolean store) {\n\
  \    Key k = new Key();\n\
  \    k.k1 = a;\n\
  \    k.k2 = b;\n\
  \    int v = k.k1 * 31 + k.k2;\n\
  \    if (store) { Cache.hit = k; }\n\
  \    return v;\n\
  \  }\n\
  \  static int local(int a) {\n\
  \    Key k = new Key();\n\
  \    k.k1 = a;\n\
  \    return k.k1 + 1;\n\
  \  }\n\
   }"

let explain_for name =
  let program = Pea_bytecode.Link.compile_source ~require_main:false explain_src in
  let m = Pea_bytecode.Link.find_method program "Cache" name in
  Explain.to_string (Explain.analyze program m)

let test_explain_partial_escape () =
  Alcotest.(check string) "branch-escaping site"
    "PEA report for Cache.getValue (summaries=on)\n\
     site v4: Key (allocated in B0, Cache.getValue@0)\n\
    \    virtualized, then materialized:\n\
    \      in B1: stored into a static field (global escape)\n\
    \    removed: 2 loads, 2 stores, 0 monitor ops\n\
     \n\
     sites: 1, fully scalar-replaced: 0, materializations: 1 (0 to stack), scratch args: 0\n\
     speculation safety: clean (every deopt state rematerializable)\n"
    (explain_for "getValue")

let test_explain_scalar_replaced () =
  Alcotest.(check string) "fully virtual site"
    "PEA report for Cache.local (summaries=on)\n\
     site v2: Key (allocated in B0, Cache.local@0)\n\
    \    fully scalar-replaced: never materialized\n\
    \    removed: 1 loads, 1 stores, 0 monitor ops\n\
     \n\
     sites: 1, fully scalar-replaced: 1, materializations: 0 (0 to stack), scratch args: 0\n\
     speculation safety: clean (every deopt state rematerializable)\n"
    (explain_for "local")

(* ------------------------------------------------------------------ *)
(* Zero-overhead guarantee                                             *)
(* ------------------------------------------------------------------ *)

let outcome = Test_support.outcome

let run_plain ?(src = scenario_src) ?(iterations = 30) ?(threshold = 22) tier =
  let program = Pea_bytecode.Link.compile_source src in
  (* same config as [run_traced]: OSR off, see the comment there *)
  let config =
    {
      Jit.default_config with
      Jit.compile_threshold = threshold;
      exec_tier = tier;
      osr = false;
    }
  in
  let vm = Vm.create ~config program in
  Vm.run_main_iterations vm iterations

let check_snapshots_equal what (a : Stats.snapshot) (b : Stats.snapshot) =
  Alcotest.(check bool) what true (a = b)

let test_tracing_off_parity () =
  List.iter
    (fun tier ->
      let off = run_plain tier in
      let on, _, _, _ = run_traced tier in
      Alcotest.(check (pair string (list string))) "same outcome" (outcome off) (outcome on);
      check_snapshots_equal "same counters" off.Vm.stats on.Vm.stats)
    [ Jit.Direct; Jit.Closure ]

(* Property form, over the shared corpus and a sampled configuration
   space: installing a tracer never changes the program outcome or any
   deterministic counter. *)
let prop_tracing_is_pure =
  let module G = QCheck2.Gen in
  let gen =
    G.map3
      (fun (name, src) threshold tier -> (name, src, threshold, tier))
      (G.oneofl Programs.corpus) (G.int_range 0 12)
      (G.oneofl [ Jit.Direct; Jit.Closure ])
  in
  QCheck2.Test.make ~name:"tracing changes no result and no counter"
    ~count:(Test_env.qcheck_count 40)
    ~print:(fun (name, _, threshold, tier) ->
      Printf.sprintf "%s threshold=%d tier=%s" name threshold
        (match tier with Jit.Direct -> "direct" | Jit.Closure -> "closure"))
    gen
    (fun (_, src, threshold, tier) ->
      (* OSR stays at its default here: tracer purity must hold on the
         OSR path too *)
      let config = { Jit.default_config with Jit.compile_threshold = threshold; exec_tier = tier } in
      let program = Pea_bytecode.Link.compile_source src in
      let off = Vm.run_main_iterations (Vm.create ~config program) 3 in
      let vm = Vm.create ~config program in
      let on =
        with_tracer (fun t ->
            Trace.set_clock t (fun () -> Stats.get (Vm.stats vm) Stats.cycles);
            Vm.run_main_iterations vm 3)
      in
      outcome off = outcome on && off.Vm.stats = on.Vm.stats)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and histograms" `Quick test_metrics_basics;
          Alcotest.test_case "schema seals at create" `Quick test_metrics_sealed;
        ] );
      ( "ring",
        [
          Alcotest.test_case "overflow drops oldest" `Quick test_ring_overflow;
          Alcotest.test_case "span pairs begin/end" `Quick test_span_pairs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jsonl identical across runs" `Quick test_golden_jsonl_deterministic;
          Alcotest.test_case "events identical across tiers" `Quick test_cross_tier_determinism;
          Alcotest.test_case "chrome sink structure" `Quick test_chrome_structure;
        ] );
      ( "explain",
        [
          Alcotest.test_case "partial escape" `Quick test_explain_partial_escape;
          Alcotest.test_case "fully scalar-replaced" `Quick test_explain_scalar_replaced;
        ] );
      ( "zero-overhead",
        [
          Alcotest.test_case "tracing off parity" `Quick test_tracing_off_parity;
          QCheck_alcotest.to_alcotest prop_tracing_is_pure;
        ] );
    ]
