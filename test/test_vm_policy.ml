(* Tiered-execution policy tests: compilation thresholds, compiled-method
   accounting, interpreter/compiled cost accounting, and the direct IR
   executor (including the simultaneous-phi "swap" hazard). *)

open Pea_bytecode
open Pea_rt
open Pea_vm

let vint n = Value.Vint n

let as_int = function
  | Some (Value.Vint n) -> n
  | _ -> Alcotest.fail "expected an int"

let simple_src =
  "class C { static int f(int x) { return x * 2 + 1; } }\n\
   class Main { static int main() { return 0; } }"

let test_threshold_respected () =
  let program = Link.compile_source simple_src in
  let config = { Jit.default_config with Jit.compile_threshold = 10 } in
  let vm = Vm.create ~config program in
  let f = Link.find_method program "C" "f" in
  for _ = 1 to 9 do
    ignore (Vm.invoke vm f [ vint 3 ])
  done;
  Alcotest.(check bool) "not compiled below threshold" true (Vm.compiled_graph vm f = None);
  ignore (Vm.invoke vm f [ vint 3 ]);
  ignore (Vm.invoke vm f [ vint 3 ]);
  Alcotest.(check bool) "compiled at threshold" true (Vm.compiled_graph vm f <> None);
  Alcotest.(check int) "counted" 1 (Stats.get (Vm.stats vm) Stats.compiled_methods)

let test_threshold_zero_compiles_immediately () =
  let program = Link.compile_source simple_src in
  let config = { Jit.default_config with Jit.compile_threshold = 0 } in
  let vm = Vm.create ~config program in
  let f = Link.find_method program "C" "f" in
  Alcotest.(check int) "result" 7 (as_int (Vm.invoke vm f [ vint 3 ]));
  Alcotest.(check bool) "compiled on first call" true (Vm.compiled_graph vm f <> None)

let test_compiled_code_cheaper () =
  (* the same work costs fewer model cycles once compiled *)
  let program = Link.compile_source simple_src in
  let f = Link.find_method program "C" "f" in
  let measure threshold =
    let vm = Vm.create ~config:{ Jit.default_config with Jit.compile_threshold = threshold } program in
    Vm.warm_up vm f [ vint 3 ] 5 (* below/above threshold *);
    let before = Stats.snapshot (Vm.stats vm) in
    ignore (Vm.invoke vm f [ vint 3 ]);
    (Stats.snapshot (Vm.stats vm)).Stats.s_cycles - before.Stats.s_cycles
  in
  let interpreted = measure 1000 in
  let compiled = measure 1 in
  Alcotest.(check bool)
    (Printf.sprintf "compiled (%d) cheaper than interpreted (%d)" compiled interpreted)
    true (compiled < interpreted)

let test_each_method_compiled_once () =
  let program = Link.compile_source simple_src in
  let config = { Jit.default_config with Jit.compile_threshold = 2 } in
  let vm = Vm.create ~config program in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 1 ] 50;
  Alcotest.(check int) "compiled exactly once" 1 (Stats.get (Vm.stats vm) Stats.compiled_methods)

(* ------------------------------------------------------------------ *)
(* Direct IR-executor behaviour                                        *)
(* ------------------------------------------------------------------ *)

(* The classic swap problem: two loop phis exchanging values every
   iteration. If the executor assigned phis sequentially instead of
   simultaneously, one value would be lost. *)
let test_phi_swap () =
  let src =
    "class C {\n\
    \  static int f(int n) {\n\
    \    int a = 1;\n\
    \    int b = 1000000;\n\
    \    int i = 0;\n\
    \    while (i < n) { int t = a; a = b; b = t; i++; }\n\
    \    return a * 2 + b;\n\
    \  }\n\
     }\n\
     class Main { static int main() { return 0; } }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "C" "f" in
  let config = { Jit.default_config with Jit.compile_threshold = 0 } in
  let vm = Vm.create ~config program in
  (* odd swap count: a and b exchanged *)
  Alcotest.(check int) "swapped once" 2000001 (as_int (Vm.invoke vm f [ vint 1 ]));
  Alcotest.(check int) "swapped twice" 1000002 (as_int (Vm.invoke vm f [ vint 2 ]));
  Alcotest.(check int) "swapped 7x" 2000001 (as_int (Vm.invoke vm f [ vint 7 ]));
  (* the canonicalizer may have simplified, but the interpreter agrees *)
  let reference vm_args =
    let stats = Stats.create () in
    let heap = Heap.create stats in
    let profile = Profile.create program in
    let globals = Array.make (max program.Link.n_statics 1) Value.Vnull in
    let rec env =
      lazy
        {
          Interp.heap;
          stats;
          profile;
          globals;
          on_invoke = (fun m a -> Interp.run (Lazy.force env) m a);
          on_print = ignore;
          on_back_edge = (fun _ ~header:_ ~locals:_ -> Interp.No_osr);
          hooks = None;
        }
    in
    as_int (Interp.run (Lazy.force env) f vm_args)
  in
  for n = 0 to 10 do
    Alcotest.(check int)
      (Printf.sprintf "interp agrees for n=%d" n)
      (reference [ vint n ])
      (as_int (Vm.invoke vm f [ vint n ]))
  done

(* Deeply recursive compiled code: compiled frames recursing through the
   VM dispatcher. *)
let test_recursive_compiled () =
  let src =
    "class C { static int tri(int n) { if (n <= 0) return 0; return n + C.tri(n - 1); } }\n\
     class Main { static int main() { return 0; } }"
  in
  let program = Link.compile_source src in
  let config = { Jit.default_config with Jit.compile_threshold = 3 } in
  let vm = Vm.create ~config program in
  let tri = Link.find_method program "C" "tri" in
  Vm.warm_up vm tri [ vint 10 ] 10;
  Alcotest.(check bool) "compiled" true (Vm.compiled_graph vm tri <> None);
  Alcotest.(check int) "tri(100)" 5050 (as_int (Vm.invoke vm tri [ vint 100 ]))

let () =
  Alcotest.run "vm_policy"
    [
      ( "policy",
        [
          Alcotest.test_case "threshold respected" `Quick test_threshold_respected;
          Alcotest.test_case "threshold zero" `Quick test_threshold_zero_compiles_immediately;
          Alcotest.test_case "compiled cheaper" `Quick test_compiled_code_cheaper;
          Alcotest.test_case "compiled once" `Quick test_each_method_compiled_once;
        ] );
      ( "executor",
        [
          Alcotest.test_case "phi swap" `Quick test_phi_swap;
          Alcotest.test_case "recursive compiled" `Quick test_recursive_compiled;
        ] );
    ]
