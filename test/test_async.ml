(* Background compilation (the Async/Replay compile modes).

   - Replay goldens: the queue-decision stream (enqueue/install/
     stale/drop/failed) for a fixed scenario is pinned, and the full
     trace is byte-identical across runs — replay is the deterministic,
     goldens-testable twin of async.
   - Robustness: a compiler-domain exception (injected through
     [Compile_queue.test_hook]) marks the method compile-failed, the VM
     keeps interpreting it, the queue keeps flowing, and the failure
     surfaces as a metric and a trace event.
   - Stress: interleaved hot methods and forced deopt storms under real
     Async — no lost installs, no double-installs (the epoch check),
     results identical to Sync, counters identical to Replay.
   - Differential properties over the shared corpus through
     [Test_support.run_all_configs]: every opt × tier × OSR ×
     compile-mode cell agrees with the interpreter, and Async agrees
     with Replay on every deterministic counter.

   Configs are built explicitly where the test compares compile modes
   against each other; [Test_env.apply] would collapse the axis. *)

open Pea_bytecode
open Pea_rt
open Pea_vm
module Event = Pea_obs.Event
module Trace = Pea_obs.Trace

let vint n = Value.Vint n

let as_int = function
  | Some (Value.Vint n) -> n
  | other ->
      Alcotest.failf "expected an int result, got %s"
        (match other with None -> "void" | Some v -> Value.string_of_value v)

let with_tracer f = Test_support.with_tracer f

(* The queue-decision stream: every event the background pipeline emits,
   minus the (noisy, count-checked instead) dedup hits. *)
let queue_decisions entries =
  List.filter_map
    (fun e ->
      match e.Trace.e_event with
      | Event.Compile_enqueue { meth; osr_bci; _ } ->
          Some (Printf.sprintf "enqueue %s%s" meth
                  (match osr_bci with None -> "" | Some b -> Printf.sprintf "@%d" b))
      | Event.Compile_install { meth; osr_bci; _ } ->
          Some (Printf.sprintf "install %s%s" meth
                  (match osr_bci with None -> "" | Some b -> Printf.sprintf "@%d" b))
      | Event.Compile_stale { meth; _ } -> Some (Printf.sprintf "stale %s" meth)
      | Event.Compile_drop { meth; _ } -> Some (Printf.sprintf "drop %s" meth)
      | Event.Compile_failed { meth; _ } -> Some (Printf.sprintf "failed %s" meth)
      | _ -> None)
    entries

(* ------------------------------------------------------------------ *)
(* Replay goldens                                                      *)
(* ------------------------------------------------------------------ *)

(* Two helper methods get hot inside one run of main: both are enqueued
   once (every later hot report is a dedup hit), both install at their
   deadline, nothing is dropped or discarded. *)
let golden_src =
  "class Main {\n\
  \  static int f(int x) { return x * 2 + 1; }\n\
  \  static int g(int x) { return x * 3 - 1; }\n\
  \  static int main() {\n\
  \    int acc = 0;\n\
  \    int i = 0;\n\
  \    while (i < 400) { acc = acc + Main.f(i) + Main.g(i); i = i + 1; }\n\
  \    return acc;\n\
  \  }\n\
   }"

let replay_config =
  {
    Jit.default_config with
    Jit.compile_threshold = 5;
    osr = false;
    compile_mode = Jit.Replay;
  }

let run_golden () =
  let program = Link.compile_source golden_src in
  let vm = Vm.create ~config:replay_config program in
  with_tracer (fun t ->
      Trace.set_clock t (fun () -> Stats.get (Vm.stats vm) Stats.cycles);
      let r = Vm.run vm in
      Vm.quiesce vm;
      (r, Trace.jsonl_string t, Trace.entries t))

let test_replay_queue_golden () =
  let r, _, entries = run_golden () in
  let reference = Run.run_source golden_src in
  Alcotest.(check string)
    "same result as the interpreter"
    (Test_support.string_of_result reference.Run.return_value)
    (Test_support.string_of_result r.Vm.return_value);
  Alcotest.(check (list string))
    "queue decision stream"
    [ "enqueue Main.f"; "enqueue Main.g"; "install Main.f"; "install Main.g" ]
    (queue_decisions entries);
  Alcotest.(check int) "two enqueues" 2 r.Vm.stats.Stats.s_compile_enqueues;
  Alcotest.(check int) "two installs" 2 r.Vm.stats.Stats.s_compile_installs;
  Alcotest.(check int) "nothing dropped" 0 r.Vm.stats.Stats.s_compile_drops;
  Alcotest.(check int) "nothing stale" 0 r.Vm.stats.Stats.s_compile_stale_discards;
  Alcotest.(check bool) "later hot reports deduped" true
    (r.Vm.stats.Stats.s_compile_dedup_hits > 0);
  (* the interpreter carried the method to its deadline: the stall
     counter belongs to Sync alone *)
  Alcotest.(check int) "no stall cycles in replay" 0 r.Vm.stats.Stats.s_compile_stall_cycles

let test_replay_trace_deterministic () =
  let _, j1, _ = run_golden () in
  let _, j2, _ = run_golden () in
  Alcotest.(check string) "replay trace byte-identical across runs" j1 j2

(* Sync must be bit-for-bit what it was before background compilation
   existed: compiles at the threshold, no queue traffic at all, and the
   modeled latency lands on the stall counter, never on [cycles]. *)
let test_sync_untouched_by_queue_counters () =
  let program = Link.compile_source golden_src in
  let config = { replay_config with Jit.compile_mode = Jit.Sync } in
  let r = Vm.run (Vm.create ~config program) in
  Alcotest.(check int) "no enqueues" 0 r.Vm.stats.Stats.s_compile_enqueues;
  Alcotest.(check int) "no installs" 0 r.Vm.stats.Stats.s_compile_installs;
  Alcotest.(check bool) "stall cycles charged" true (r.Vm.stats.Stats.s_compile_stall_cycles > 0);
  (* time-to-steady-state = cycles + stall; replay (= async on the model
     clock) must win whenever compiled code beats interpreting through
     the latency window *)
  let rr, _, _ = run_golden () in
  Alcotest.(check string) "same result"
    (Test_support.string_of_result r.Vm.return_value)
    (Test_support.string_of_result rr.Vm.return_value);
  Alcotest.(check bool) "async/replay time-to-steady beats sync" true
    (rr.Vm.stats.Stats.s_cycles + rr.Vm.stats.Stats.s_compile_stall_cycles
    < r.Vm.stats.Stats.s_cycles + r.Vm.stats.Stats.s_compile_stall_cycles)

(* ------------------------------------------------------------------ *)
(* Robustness: a compiler-domain exception                             *)
(* ------------------------------------------------------------------ *)

let robust_src =
  "class C {\n\
  \  static int f(int x) { return x * 2 + 1; }\n\
  \  static int g(int x) { return x * 3 - 1; }\n\
   }"

(* Inject a fault into every compile of C.f: the method must stay on the
   interpreter (correct results forever), the failure must surface as a
   metric and a trace event, and the queue must keep serving other
   methods — the VM never crashes or wedges. *)
let check_compile_failure mode () =
  let program = Link.compile_source ~require_main:false robust_src in
  let config =
    { Jit.default_config with Jit.compile_threshold = 3; osr = false; compile_mode = mode }
  in
  let vm = Vm.create ~config program in
  let f = Link.find_method program "C" "f" in
  let g = Link.find_method program "C" "g" in
  let fail_mid = f.Classfile.mth_id in
  Compile_queue.test_hook :=
    (fun (mid, osr, _) -> if mid = fail_mid && osr = None then failwith "injected compiler fault");
  Fun.protect
    ~finally:(fun () -> Compile_queue.test_hook := fun _ -> ())
    (fun () ->
      with_tracer (fun t ->
          for i = 1 to 30 do
            Alcotest.(check int) "f stays correct" ((i * 2) + 1)
              (as_int (Vm.invoke vm f [ vint i ]));
            Alcotest.(check int) "g stays correct" ((i * 3) - 1)
              (as_int (Vm.invoke vm g [ vint i ]))
          done;
          Vm.quiesce vm;
          Alcotest.(check bool) "f marked compile-failed" true (Vm.compile_failed vm f);
          Alcotest.(check bool) "f never installed" true (Vm.compiled_graph vm f = None);
          Alcotest.(check bool) "g still installed" true (Vm.compiled_graph vm g <> None);
          Alcotest.(check bool) "failure counted" true
            (Stats.get (Vm.stats vm) Stats.compile_failures >= 1);
          Alcotest.(check int) "queue drained" 0 (Vm.pending_compiles vm);
          Alcotest.(check bool) "failure traced" true
            (List.exists
               (fun e ->
                 match e.Trace.e_event with
                 | Event.Compile_failed { meth = "C.f"; _ } -> true
                 | _ -> false)
               (Trace.entries t));
          (* not wedged: the VM keeps answering after the failure *)
          Alcotest.(check int) "f interpreted afterwards" 41 (as_int (Vm.invoke vm f [ vint 20 ]));
          Alcotest.(check int) "g compiled afterwards" 59 (as_int (Vm.invoke vm g [ vint 20 ]))))

let test_compile_failure_replay () = check_compile_failure Jit.Replay ()

let test_compile_failure_async () = check_compile_failure Jit.Async ()

(* ------------------------------------------------------------------ *)
(* Stress: hot methods × deopt storms under real Async                 *)
(* ------------------------------------------------------------------ *)

(* fa/fb carry three independently-pruned cold sites each; a site fires
   every 45th/60th call, cycling through the sites. Each firing is one
   deopt → site blacklist → epoch bump → recompile, and with
   [deopt_storm_limit = 2] the second invalidation pins the method — a
   real deopt storm against installed background code. fc is plain hot
   arithmetic; fd is a hot loop that tiers up through OSR. A queue
   capacity of 2 forces drop-and-reprofile backpressure. *)
let stress_src =
  "class S { int v; }\n\
   class W {\n\
  \  static int sink;\n\
  \  static int fa(int x, int k) {\n\
  \    S s = new S();\n\
  \    s.v = x * 3 + 1;\n\
  \    if (k == 1) { W.sink = W.sink + s.v; }\n\
  \    if (k == 2) { W.sink = W.sink + s.v * 2; }\n\
  \    if (k == 3) { W.sink = W.sink - s.v; }\n\
  \    return s.v;\n\
  \  }\n\
  \  static int fb(int x, int k) {\n\
  \    S s = new S();\n\
  \    s.v = x * 5 - 2;\n\
  \    if (k == 1) { W.sink = W.sink + s.v * 2; }\n\
  \    if (k == 2) { W.sink = W.sink - s.v * 3; }\n\
  \    if (k == 3) { W.sink = W.sink + s.v + 1; }\n\
  \    return s.v + 1;\n\
  \  }\n\
  \  static int fc(int x) { return x * 7 + W.sink; }\n\
  \  static int fd(int x) {\n\
  \    int acc = 0;\n\
  \    int i = 0;\n\
  \    while (i < 10) { acc = acc + x + i; i = i + 1; }\n\
  \    return acc;\n\
  \  }\n\
   }"

let stress_config mode =
  {
    Jit.default_config with
    Jit.compile_threshold = 25;
    osr = true;
    osr_threshold = 30;
    deopt_storm_limit = 2;
    compile_mode = mode;
    compile_queue_cap = 2;
    compile_domains = 2;
  }

(* A fixed op budget of interleaved calls; every 45th/60th call takes
   the next cold site in the cycle (a forced deopt against whatever code
   is installed at that point). *)
let drive_stress ?(trace = false) mode =
  let program = Link.compile_source ~require_main:false stress_src in
  let vm = Vm.create ~config:(stress_config mode) program in
  let fa = Link.find_method program "W" "fa" in
  let fb = Link.find_method program "W" "fb" in
  let fc = Link.find_method program "W" "fc" in
  let fd = Link.find_method program "W" "fd" in
  let results = ref [] in
  let push v = results := as_int v :: !results in
  let cold i period = if i mod period = 0 then 1 + (i / period mod 3) else 0 in
  let body t =
    Option.iter
      (fun t -> Trace.set_clock t (fun () -> Stats.get (Vm.stats vm) Stats.cycles))
      t;
    for i = 1 to 300 do
      push (Vm.invoke vm fa [ vint i; vint (cold i 45) ]);
      push (Vm.invoke vm fb [ vint i; vint (cold i 60) ]);
      push (Vm.invoke vm fc [ vint i ]);
      if i mod 3 = 0 then push (Vm.invoke vm fd [ vint i ])
    done;
    Vm.quiesce vm;
    let entries = match t with Some t -> Trace.entries t | None -> [] in
    (List.rev !results, Stats.snapshot (Vm.stats vm), entries, vm, (fa, fc))
  in
  if trace then with_tracer (fun t -> body (Some t)) else body None

let test_stress_async () =
  let results_a, sa, entries, vm, (fa, fc) = drive_stress ~trace:true Jit.Async in
  (* real deopt storms happened, against installed background code *)
  Alcotest.(check bool) "deopts fired" true (sa.Stats.s_deopts >= 4);
  Alcotest.(check bool) "the storm guard pinned fa" true (Vm.interpreter_pinned vm fa);
  Alcotest.(check bool) "installs happened" true (sa.Stats.s_compile_installs > 0);
  Alcotest.(check bool) "backpressure exercised" true (sa.Stats.s_compile_drops > 0);
  (* no lost installs: after the drain, every enqueued task is accounted
     for as exactly one of installed / stale-discarded / failed *)
  Alcotest.(check int) "queue empty" 0 (Vm.pending_compiles vm);
  Alcotest.(check int) "enqueues all accounted" sa.Stats.s_compile_enqueues
    (sa.Stats.s_compile_installs + sa.Stats.s_compile_stale_discards
   + sa.Stats.s_compile_failures);
  Alcotest.(check int) "no compile failures" 0 sa.Stats.s_compile_failures;
  (* no double-installs: the epoch check means one install per
     (key, epoch) — a duplicate would be the same code installed twice *)
  let installs =
    List.filter_map
      (fun e ->
        match e.Trace.e_event with
        | Event.Compile_install { meth; osr_bci; epoch; _ } -> Some (meth, osr_bci, epoch)
        | _ -> None)
      entries
  in
  Alcotest.(check int) "every install unique per (key, epoch)" (List.length installs)
    (List.length (List.sort_uniq compare installs));
  (* the storm-free method ended up compiled *)
  Alcotest.(check bool) "fc installed" true (Vm.compiled_graph vm fc <> None);
  (* semantics: identical call-by-call results in all three modes *)
  let results_s, ss, _, _, _ = drive_stress Jit.Sync in
  let results_r, sr, _, _, _ = drive_stress Jit.Replay in
  Alcotest.(check (list int)) "async results = sync results" results_s results_a;
  Alcotest.(check (list int)) "replay results = sync results" results_s results_r;
  (* determinism: async and replay agree bit-for-bit on the whole
     counter surface — replay really is async on the model clock *)
  Alcotest.(check bool) "async counters = replay counters" true (sa = sr);
  (* and sync saw none of the queue *)
  Alcotest.(check int) "sync never enqueues" 0 ss.Stats.s_compile_enqueues

(* The stale-discard path, arising naturally: in the paper's cache loop
   the pruned miss branch deopts every 100th call, and under background
   compilation one of those deopts lands while a recompile of getValue
   is still in flight — the finished code is compiled against the old
   blacklist and must be discarded (and requeued), never installed. *)
let test_stale_discard_on_racing_deopt () =
  let program = Link.compile_source Programs.cache_loop in
  let config =
    { Jit.default_config with Jit.compile_threshold = 5; compile_mode = Jit.Replay }
  in
  let vm = Vm.create ~config program in
  let r = Vm.run_main_iterations vm 50 in
  Vm.quiesce vm;
  let reference = Run.run_source Programs.cache_loop in
  Alcotest.(check string) "same result as the interpreter"
    (Test_support.string_of_result reference.Run.return_value)
    (Test_support.string_of_result r.Vm.return_value);
  let s = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check bool) "a deopt raced an in-flight compile" true
    (s.Stats.s_compile_stale_discards >= 1);
  Alcotest.(check bool) "the requeued compile installed" true (s.Stats.s_compile_installs >= 1);
  Alcotest.(check int) "queue drained" 0 (Vm.pending_compiles vm);
  Alcotest.(check int) "everything accounted" s.Stats.s_compile_enqueues
    (s.Stats.s_compile_installs + s.Stats.s_compile_stale_discards + s.Stats.s_compile_failures)

(* ------------------------------------------------------------------ *)
(* Differential properties over the shared matrix                      *)
(* ------------------------------------------------------------------ *)

(* Every cell of opt × tier × OSR × {sync, replay} equals the
   interpreter on results and prints, and at a fixed (opt, osr, mode)
   the two execution tiers agree on every deterministic counter. *)
let prop_matrix_differential =
  let iters = 6 in
  QCheck2.Test.make ~name:"all compile-mode cells = interpreter; tiers agree on counters"
    ~count:(Test_env.qcheck_count 25)
    ~print:(fun (name, _) -> name)
    (QCheck2.Gen.oneofl Programs.corpus)
    (fun (_, src) ->
      let reference = Test_support.interp_reference ~iterations:iters src in
      let cells = Test_support.run_all_configs ~iterations:iters src in
      List.for_all (fun (_, r) -> Test_support.outcome r = reference) cells
      && List.for_all
           (fun ((c, r) : Test_support.cell * Vm.result) ->
             match
               List.find_opt
                 (fun ((c', _) : Test_support.cell * Vm.result) ->
                   c'.Test_support.c_opt = c.Test_support.c_opt
                   && c'.Test_support.c_osr = c.Test_support.c_osr
                   && c'.Test_support.c_mode = c.Test_support.c_mode
                   && c'.Test_support.c_tier <> c.Test_support.c_tier)
                 cells
             with
             | None -> false
             | Some (_, r') ->
                 Test_support.deterministic_counters r.Vm.stats
                 = Test_support.deterministic_counters r'.Vm.stats)
           cells)

(* Async is replay plus wall-clock overlap: identical outcome and an
   identical counter snapshot, domains or not. *)
let prop_async_equals_replay =
  let iters = 6 in
  let module G = QCheck2.Gen in
  let gen =
    G.map3
      (fun (name, src) opt (tier, osr) -> (name, src, opt, tier, osr))
      (G.oneofl Programs.corpus)
      (G.oneofl [ Jit.O_none; Jit.O_ea; Jit.O_pea ])
      (G.pair (G.oneofl [ Jit.Direct; Jit.Closure ]) G.bool)
  in
  QCheck2.Test.make ~name:"async = replay on results and every counter"
    ~count:(Test_env.qcheck_count 12)
    ~print:(fun (name, _, opt, tier, osr) ->
      Printf.sprintf "%s opt=%s tier=%s osr=%b" name (Test_support.opt_name opt)
        (Test_support.tier_name tier) osr)
    gen
    (fun (_, src, opt, tier, osr) ->
      let run mode =
        let program = Link.compile_source src in
        let config =
          {
            Jit.default_config with
            Jit.opt;
            exec_tier = tier;
            osr;
            compile_threshold = 4;
            osr_threshold = 3;
            compile_mode = mode;
          }
        in
        let vm = Vm.create ~config program in
        let r = Vm.run_main_iterations vm iters in
        Vm.quiesce vm;
        (Test_support.outcome r, r.Vm.stats)
      in
      let oa, sa = run Jit.Async in
      let orr, sr = run Jit.Replay in
      oa = orr && sa = sr)

let () =
  Alcotest.run "async"
    [
      ( "replay-goldens",
        [
          Alcotest.test_case "queue decision stream" `Quick test_replay_queue_golden;
          Alcotest.test_case "trace byte-identical across runs" `Quick
            test_replay_trace_deterministic;
          Alcotest.test_case "sync untouched, async wins time-to-steady" `Quick
            test_sync_untouched_by_queue_counters;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "compiler fault (replay)" `Quick test_compile_failure_replay;
          Alcotest.test_case "compiler fault (async domain)" `Quick test_compile_failure_async;
        ] );
      ( "stress",
        [
          Alcotest.test_case "hot methods x deopt storms" `Quick test_stress_async;
          Alcotest.test_case "stale discard on racing deopt" `Quick
            test_stale_discard_on_racing_deopt;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_matrix_differential;
          QCheck_alcotest.to_alcotest prop_async_equals_replay;
        ] );
    ]
