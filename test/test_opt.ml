(* Unit tests for the generic optimization passes: canonicalization,
   global value numbering, inlining and speculative branch pruning. *)

open Pea_bytecode
open Pea_ir
module Run = Pea_rt.Run

let build_main src =
  let program = Link.compile_source src in
  (program, Builder.build (Link.entry_exn program))

let main_wrap body = Printf.sprintf "class Main { static int main() { %s } }" body

let count_ops g p =
  let n = ref 0 in
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) then begin
        List.iter (fun (x : Node.t) -> if p x.Node.op then incr n) b.Graph.phis;
        Pea_support.Dyn_array.iter (fun (x : Node.t) -> if p x.Node.op then incr n) b.Graph.instrs
      end)
    g;
  !n

let reachable_blocks g =
  let r = Graph.reachable g in
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r

(* Run a graph and compare its result with the interpreter, as a semantic
   backstop for every pass test. *)
let result_matches program g =
  let reference = Run.run_program program in
  let stats = Pea_rt.Stats.create () in
  let heap = Pea_rt.Heap.create stats in
  let profile = Pea_rt.Profile.create program in
  let globals = Array.make (max program.Link.n_statics 1) Pea_rt.Value.Vnull in
  List.iter
    (fun (sf : Classfile.rt_static_field) ->
      globals.(sf.Classfile.sf_index) <- Pea_rt.Value.default_value sf.Classfile.sf_ty)
    program.Link.statics;
  let printed = ref [] in
  let rec env =
    lazy
      {
        Pea_rt.Interp.heap;
        stats;
        profile;
        globals;
        on_invoke = (fun m args -> Pea_rt.Interp.run (Lazy.force env) m args);
        on_print = (fun v -> printed := v :: !printed);
        on_back_edge = (fun _ ~header:_ ~locals:_ -> Pea_rt.Interp.No_osr);
        hooks = None;
      }
  in
  let r = Pea_vm.Ir_exec.run (Lazy.force env) g [] in
  match r, reference.Run.return_value with
  | Some (Pea_rt.Value.Vint a), Some (Pea_rt.Value.Vint b) -> a = b
  | _ -> false

(* Execute a transformed graph directly with explicit arguments. *)
let exec_graph_int program g args =
  let stats = Pea_rt.Stats.create () in
  let heap = Pea_rt.Heap.create stats in
  let profile = Pea_rt.Profile.create program in
  let globals = Array.make (max program.Link.n_statics 1) Pea_rt.Value.Vnull in
  let rec env =
    lazy
      {
        Pea_rt.Interp.heap;
        stats;
        profile;
        globals;
        on_invoke = (fun m a -> Pea_rt.Interp.run (Lazy.force env) m a);
        on_print = ignore;
        on_back_edge = (fun _ ~header:_ ~locals:_ -> Pea_rt.Interp.No_osr);
        hooks = None;
      }
  in
  match Pea_vm.Ir_exec.run (Lazy.force env) g args with
  | Some (Pea_rt.Value.Vint n) -> n
  | _ -> Alcotest.fail "expected an int result"

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

let test_constant_folding () =
  let program, g = build_main (main_wrap "return 2 + 3 * 4;") in
  ignore (Pea_opt.Canonicalize.run g);
  Check.check_exn g;
  (* everything folds to a single constant return *)
  Alcotest.(check int) "no arithmetic left" 0
    (count_ops g (function Node.Arith _ -> true | _ -> false));
  Alcotest.(check bool) "still correct" true (result_matches program g)

let test_branch_folding () =
  let program, g = build_main (main_wrap "if (1 < 2) return 10; return 20;") in
  let before = reachable_blocks g in
  ignore (Pea_opt.Canonicalize.run g);
  Check.check_exn g;
  Alcotest.(check bool) "blocks removed" true (reachable_blocks g < before);
  Alcotest.(check int) "no branches left" 0
    (count_ops g (function Node.Cmp _ -> true | _ -> false));
  Alcotest.(check bool) "still correct" true (result_matches program g)

let test_identity_simplification () =
  let program, g =
    build_main (main_wrap "int x = 5; int a = x + 0; int b = a * 1; int c = b / 1; return c;")
  in
  ignore (Pea_opt.Canonicalize.run g);
  Check.check_exn g;
  Alcotest.(check int) "all identities removed" 0
    (count_ops g (function Node.Arith _ -> true | _ -> false));
  Alcotest.(check bool) "still correct" true (result_matches program g)

let test_div_by_one_terminates () =
  (* regression: x / 1 on a non-pure Div must not loop the canonicalizer *)
  let program, g = build_main (main_wrap "int x = 7; return (x / 1) % 1;") in
  ignore (Pea_opt.Canonicalize.run g);
  Check.check_exn g;
  Alcotest.(check bool) "still correct" true (result_matches program g)

let test_mul_by_zero () =
  let program, g = build_main (main_wrap "int x = 123; return x * 0 + 4;") in
  ignore (Pea_opt.Canonicalize.run g);
  Check.check_exn g;
  Alcotest.(check int) "folded" 0 (count_ops g (function Node.Arith _ -> true | _ -> false));
  Alcotest.(check bool) "still correct" true (result_matches program g)

(* ------------------------------------------------------------------ *)
(* GVN                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gvn_dedup () =
  let program, g =
    build_main
      "class Main { static int f(int a, int b) { return (a + b) * (a + b) + (b + a); } \
       static int main() { return Main.f(3, 4); } }"
  in
  (* work on f's graph *)
  ignore program;
  let program2 = Link.compile_source
      "class Main { static int f(int a, int b) { return (a + b) * (a + b) + (b + a); } \
       static int main() { return Main.f(3, 4); } }" in
  let f = Link.find_method program2 "Main" "f" in
  let gf = Builder.build f in
  ignore (Pea_opt.Gvn.run gf);
  Check.check_exn gf;
  (* a+b, b+a and the duplicate a+b collapse into one Add (commutative);
     the outer + of the whole expression remains, so two Adds in total *)
  Alcotest.(check int) "two additions" 2
    (count_ops gf (function Node.Arith (Node.Add, _, _) -> true | _ -> false));
  ignore g

let test_gvn_respects_dominance () =
  (* the same expression computed in two sibling branches must NOT be
     merged (neither dominates the other) *)
  let program = Link.compile_source
      "class Main { static int f(int a, boolean c) { int r = 0; if (c) { r = a * a; } else { r = a * a; } return r; } \
       static int main() { return Main.f(3, true); } }" in
  let f = Link.find_method program "Main" "f" in
  let gf = Builder.build f in
  ignore (Pea_opt.Gvn.run gf);
  Check.check_exn gf;
  Alcotest.(check int) "two multiplications remain" 2
    (count_ops gf (function Node.Arith (Node.Mul, _, _) -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let test_inline_static () =
  let program, g =
    build_main
      "class Main { static int add(int a, int b) { return a + b; } static int main() { return Main.add(40, 2); } }"
  in
  ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  Check.check_exn g;
  Alcotest.(check int) "no invokes left" 0
    (count_ops g (function Node.Invoke _ -> true | _ -> false));
  ignore (Pea_opt.Canonicalize.run g);
  Alcotest.(check bool) "still correct" true (result_matches program g)

let test_inline_devirtualizes_exact () =
  let src =
    "class A { int f() { return 1; } }\n\
     class B extends A { int f() { return 2; } }\n\
     class Main { static int main() { A a = new B(); return a.f(); } }"
  in
  let program, g = build_main src in
  ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  Check.check_exn g;
  (* the receiver is exactly B, so B.f is inlined despite the override *)
  Alcotest.(check int) "no invokes left" 0
    (count_ops g (function Node.Invoke _ -> true | _ -> false));
  ignore (Pea_opt.Canonicalize.run g);
  Alcotest.(check bool) "still correct" true (result_matches program g)

let test_inline_cha_blocked_by_override () =
  let src =
    "class A { int f() { return 1; } }\n\
     class B extends A { int f() { return 2; } }\n\
     class Main {\n\
    \  static int go(A a) { return a.f(); }\n\
    \  static int main() { return Main.go(new B()); }\n\
     }"
  in
  let program = Link.compile_source src in
  let go = Link.find_method program "Main" "go" in
  let g = Builder.build go in
  ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  Check.check_exn g;
  (* receiver type unknown and f is overridden: the call must remain *)
  Alcotest.(check int) "invoke remains" 1
    (count_ops g (function Node.Invoke _ -> true | _ -> false))

let test_inline_cha_monomorphic () =
  let src =
    "class A { int f() { return 42; } }\n\
     class Main {\n\
    \  static int go(A a) { return a.f(); }\n\
    \  static int main() { return Main.go(new A()); }\n\
     }"
  in
  let program = Link.compile_source src in
  let go = Link.find_method program "Main" "go" in
  let g = Builder.build go in
  ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  Check.check_exn g;
  Alcotest.(check int) "devirtualized and inlined" 0
    (count_ops g (function Node.Invoke _ -> true | _ -> false));
  (* a null check guards the inlined body *)
  Alcotest.(check int) "null check inserted" 1
    (count_ops g (function Node.Null_check _ -> true | _ -> false))

let test_inline_frame_state_chain () =
  let src =
    "class Main {\n\
    \  static int g;\n\
    \  static int inner(int x) { Main.g = x; return x + 1; }\n\
    \  static int main() { return Main.inner(5); }\n\
     }"
  in
  let program, g = build_main src in
  ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  Check.check_exn g;
  (* the store inside the inlined body has a two-deep frame-state chain *)
  let found = ref false in
  Graph.iter_blocks
    (fun b ->
      Pea_support.Dyn_array.iter
        (fun (n : Node.t) ->
          match n.Node.op, n.Node.fs with
          | Node.Store_static _, Some fs ->
              found := true;
              Alcotest.(check int) "frame depth" 2 (Frame_state.depth fs);
              Alcotest.(check string) "inner frame method" "Main.inner"
                (Classfile.qualified_name fs.Frame_state.fs_method);
              (match fs.Frame_state.fs_outer with
              | Some outer ->
                  Alcotest.(check string) "outer frame method" "Main.main"
                    (Classfile.qualified_name outer.Frame_state.fs_method)
              | None -> Alcotest.fail "missing outer frame")
          | _ -> ())
        b.Graph.instrs)
    g;
  Alcotest.(check bool) "store found" true !found

let test_inline_recursion_bounded () =
  let src =
    "class Main {\n\
    \  static int fact(int n) { if (n <= 1) return 1; return n * Main.fact(n - 1); }\n\
    \  static int main() { return Main.fact(5); }\n\
     }"
  in
  let program = Link.compile_source src in
  let fact = Link.find_method program "Main" "fact" in
  let g = Builder.build fact in
  (* must terminate and stay well-formed *)
  ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
  Check.check_exn g

(* ------------------------------------------------------------------ *)
(* Read elimination                                                    *)
(* ------------------------------------------------------------------ *)

let loads g =
  count_ops g (function Node.Load_field _ | Node.Load_static _ | Node.Array_load _ -> true | _ -> false)

let test_read_elim_load_load () =
  let src =
    "class P { int v; }\n\
     class Main { static int f(P p) { return p.v + p.v + p.v; } static int main() { P p = new P(); p.v = 3; return Main.f(p); } }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  Alcotest.(check int) "three loads before" 3 (loads g);
  Alcotest.(check bool) "changed" true (Pea_opt.Read_elim.run g);
  Check.check_exn g;
  Alcotest.(check int) "one load after" 1 (loads g)

let test_read_elim_store_forwarding () =
  let src =
    "class P { int v; }\n\
     class Main { static int f(P p, int x) { p.v = x; return p.v; } static int main() { P p = new P(); return Main.f(p, 9); } }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Read_elim.run g);
  Check.check_exn g;
  Alcotest.(check int) "load forwarded from store" 0 (loads g)

let test_read_elim_killed_by_call () =
  let src =
    "class P { int v; }\n\
     class Main {\n\
    \  static void mutate(P p) { p.v = 99; }\n\
    \  static int f(P p) { int a = p.v; Main.mutate(p); return a + p.v; }\n\
    \  static int main() { P p = new P(); p.v = 1; return Main.f(p); }\n\
     }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Read_elim.run g);
  Check.check_exn g;
  (* the call clobbers: both loads must stay *)
  Alcotest.(check int) "both loads remain" 2 (loads g)

let test_read_elim_same_offset_aliasing () =
  (* distinct receivers, same field: a store to q.v must kill knowledge of
     p.v (p and q may alias) *)
  let src =
    "class P { int v; }\n\
     class Main {\n\
    \  static int f(P p, P q) { int a = p.v; q.v = 5; return a + p.v; }\n\
    \  static int main() { P p = new P(); return Main.f(p, p); }\n\
     }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Read_elim.run g);
  Check.check_exn g;
  Alcotest.(check int) "both loads remain" 2 (loads g);
  (* semantics: p == q, so the second read sees 5 *)
  let reference = Run.run_program program in
  (match reference.Run.return_value with
  | Some (Pea_rt.Value.Vint n) -> Alcotest.(check int) "interpreter result" 5 n
  | _ -> Alcotest.fail "expected int")

let test_read_elim_redundant_store () =
  let src =
    "class Main {\n\
    \  static int g;\n\
    \  static int f(int x) { Main.g = x; Main.g = x; return Main.g; }\n\
    \  static int main() { return Main.f(3); }\n\
     }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Read_elim.run g);
  Check.check_exn g;
  Alcotest.(check int) "one store left" 1
    (count_ops g (function Node.Store_static _ -> true | _ -> false));
  Alcotest.(check int) "load forwarded" 0 (loads g)

(* ------------------------------------------------------------------ *)
(* Conditional elimination                                             *)
(* ------------------------------------------------------------------ *)

let branches g =
  let n = ref 0 in
  let reachable = Graph.reachable g in
  Graph.iter_blocks
    (fun b ->
      if reachable.(b.Graph.b_id) then
        match b.Graph.term with Graph.If _ -> incr n | _ -> ())
    g;
  !n

let test_cond_elim_nested () =
  (* the inner if (c) inside the true branch of if (c) folds away *)
  let program = Link.compile_source
      "class Main {\n\
       static int f(boolean c) {\n\
         int r = 0;\n\
         if (c) { if (c) { r = 1; } else { r = 2; } } else { r = 3; }\n\
         return r;\n\
       }\n\
       static int main() { return Main.f(true); } }" in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Gvn.run g) (* share the two c-condition nodes *);
  let before = branches g in
  Alcotest.(check bool) "changed" true (Pea_opt.Cond_elim.run g);
  Check.check_exn g;
  Alcotest.(check bool) "branch removed" true (branches g < before);
  (* semantics via direct execution of the transformed graph *)
  Alcotest.(check bool) "f(true) = 1" true (exec_graph_int program g [ Pea_rt.Value.Vbool true ] = 1);
  Alcotest.(check bool) "f(false) = 3" true (exec_graph_int program g [ Pea_rt.Value.Vbool false ] = 3)

let test_cond_elim_false_arm () =
  let program = Link.compile_source
      "class Main {\n\
       static int f(boolean c) {\n\
         if (c) { return 1; }\n\
         if (c) { return 2; }\n\
         return 3;\n\
       }\n\
       static int main() { return Main.f(false); } }" in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Gvn.run g);
  Alcotest.(check bool) "changed" true (Pea_opt.Cond_elim.run g);
  Check.check_exn g;
  Alcotest.(check int) "one branch left" 1 (branches g);
  Alcotest.(check bool) "f(true) = 1" true (exec_graph_int program g [ Pea_rt.Value.Vbool true ] = 1);
  Alcotest.(check bool) "f(false) = 3" true (exec_graph_int program g [ Pea_rt.Value.Vbool false ] = 3)

let test_cond_elim_independent () =
  (* different conditions: nothing to fold *)
  let program = Link.compile_source
      "class Main {\n\
       static int f(boolean a, boolean b) { int r = 0; if (a) { if (b) { r = 1; } } return r; }\n\
       static int main() { return Main.f(true, false); } }" in
  let f = Link.find_method program "Main" "f" in
  let g = Builder.build f in
  ignore (Pea_opt.Gvn.run g);
  Alcotest.(check bool) "unchanged" false (Pea_opt.Cond_elim.run g)

(* ------------------------------------------------------------------ *)
(* Branch pruning                                                      *)
(* ------------------------------------------------------------------ *)

let test_prune_cold_branch () =
  let src =
    "class Main {\n\
    \  static int g;\n\
    \  static int f(boolean cold) { if (cold) { Main.g = 1; return 2; } return 1; }\n\
    \  static int main() { int acc = 0; int i = 0; while (i < 100) { acc = acc + Main.f(false); i = i + 1; } return acc; }\n\
     }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  (* gather a profile by interpreting *)
  let r = Run.run_program program in
  ignore r;
  let stats = Pea_rt.Stats.create () in
  let heap = Pea_rt.Heap.create stats in
  let profile = Pea_rt.Profile.create program in
  let globals = Array.make (max program.Link.n_statics 1) Pea_rt.Value.Vnull in
  let rec env =
    lazy
      {
        Pea_rt.Interp.heap;
        stats;
        profile;
        globals;
        on_invoke = (fun m args -> Pea_rt.Interp.run (Lazy.force env) m args);
        on_print = ignore;
        on_back_edge = (fun _ ~header:_ ~locals:_ -> Pea_rt.Interp.No_osr);
        hooks = None;
      }
  in
  for _ = 1 to 50 do
    ignore (Pea_rt.Interp.run (Lazy.force env) f [ Pea_rt.Value.Vbool false ])
  done;
  let g = Builder.build f in
  let changed = Pea_opt.Prune.run profile g in
  Check.check_exn g;
  Alcotest.(check bool) "pruned" true changed;
  let deopts = ref 0 in
  Graph.iter_blocks
    (fun b -> match b.Graph.term with Graph.Deopt _ -> incr deopts | _ -> ())
    g;
  Alcotest.(check int) "one deopt block" 1 !deopts

let test_prune_needs_samples () =
  let src =
    "class Main {\n\
    \  static int f(boolean c) { if (c) return 2; return 1; }\n\
    \  static int main() { return Main.f(true); }\n\
     }"
  in
  let program = Link.compile_source src in
  let f = Link.find_method program "Main" "f" in
  let profile = Pea_rt.Profile.create program in
  (* no samples: nothing may be pruned *)
  let g = Builder.build f in
  Alcotest.(check bool) "not pruned" false (Pea_opt.Prune.run profile g)

let () =
  Alcotest.run "opt"
    [
      ( "canonicalize",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "branch folding" `Quick test_branch_folding;
          Alcotest.test_case "identities" `Quick test_identity_simplification;
          Alcotest.test_case "div by one terminates" `Quick test_div_by_one_terminates;
          Alcotest.test_case "mul by zero" `Quick test_mul_by_zero;
        ] );
      ( "gvn",
        [
          Alcotest.test_case "dedup" `Quick test_gvn_dedup;
          Alcotest.test_case "respects dominance" `Quick test_gvn_respects_dominance;
        ] );
      ( "inline",
        [
          Alcotest.test_case "static" `Quick test_inline_static;
          Alcotest.test_case "exact devirtualization" `Quick test_inline_devirtualizes_exact;
          Alcotest.test_case "CHA blocked by override" `Quick test_inline_cha_blocked_by_override;
          Alcotest.test_case "CHA monomorphic" `Quick test_inline_cha_monomorphic;
          Alcotest.test_case "frame-state chain" `Quick test_inline_frame_state_chain;
          Alcotest.test_case "recursion bounded" `Quick test_inline_recursion_bounded;
        ] );
      ( "read_elim",
        [
          Alcotest.test_case "load-load" `Quick test_read_elim_load_load;
          Alcotest.test_case "store forwarding" `Quick test_read_elim_store_forwarding;
          Alcotest.test_case "killed by call" `Quick test_read_elim_killed_by_call;
          Alcotest.test_case "same-offset aliasing" `Quick test_read_elim_same_offset_aliasing;
          Alcotest.test_case "redundant store" `Quick test_read_elim_redundant_store;
        ] );
      ( "cond_elim",
        [
          Alcotest.test_case "nested" `Quick test_cond_elim_nested;
          Alcotest.test_case "false arm" `Quick test_cond_elim_false_arm;
          Alcotest.test_case "independent" `Quick test_cond_elim_independent;
        ] );
      ( "prune",
        [
          Alcotest.test_case "cold branch" `Quick test_prune_cold_branch;
          Alcotest.test_case "needs samples" `Quick test_prune_needs_samples;
        ] );
    ]
