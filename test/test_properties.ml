(* Property-based differential testing.

   A generator produces random well-typed, terminating MJ programs over a
   fixed class skeleton (objects with int fields and object links, escapes
   through statics, synchronized regions, bounded loops, prints). For every
   generated program:

   1. semantics are identical across the interpreter and the compiled
      configurations (no EA / whole-method EA / PEA);
   2. dynamic allocation and monitor-operation counts never increase under
      escape analysis (§4 of the paper), and PEA subsumes whole-method EA.

   Because the generator controls all sources of nondeterminism and bounds
   every loop, any discrepancy is a real compiler bug. *)

open Pea_rt
open Pea_vm

(* ------------------------------------------------------------------ *)
(* Program generator                                                   *)
(* ------------------------------------------------------------------ *)

module G = QCheck2.Gen

let ( let* ) x f = G.bind x f

let ( and* ) a b = G.bind a (fun x -> G.map (fun y -> (x, y)) b)

type genv = {
  ivars : string list; (* int locals, always initialized *)
  pvars : string list; (* P locals, always non-null *)
  qvars : string list; (* A-typed locals, rotated across A/B/C: megamorphic receivers *)
  depth : int;
}

let indent n = String.make (2 * n) ' '

let gen_int_atom env =
  G.oneof
    [
      G.map string_of_int (G.int_range (-20) 100);
      G.oneofl env.ivars;
      G.map (fun p -> p ^ ".a") (G.oneofl env.pvars);
      G.map (fun p -> p ^ ".b") (G.oneofl env.pvars);
      G.return "Main.g2";
      (* constant-length array accesses: exercised both virtualized (PEA)
         and as real allocations (interpreter / no-EA) *)
      G.map (fun i -> Printf.sprintf "arr[%d]" i) (G.int_range 0 2);
      G.return "arr.length";
      (* virtual call on a rotated receiver: the site goes megamorphic,
         so compiled code speculates on the profiled type and deopts *)
      (let* q = G.oneofl env.qvars and* k = G.int_range 0 9 in
       G.return (Printf.sprintf "%s.val(%d)" q k));
      G.map (fun q -> q ^ ".w") (G.oneofl env.qvars);
      (* bounded recursion through fixed helpers; recP allocates a fresh
         P per frame, so recursive inlining carries virtual descriptors *)
      (let* n = G.int_range 0 7 in
       G.return (Printf.sprintf "Main.rec(%d, Main.g2)" n));
      (let* n = G.int_range 0 5 in
       G.return (Printf.sprintf "Main.recP(%d)" n));
    ]

let rec gen_int_expr env d =
  if d <= 0 then gen_int_atom env
  else
    G.oneof
      [
        gen_int_atom env;
        (let* a = gen_int_expr env (d - 1) and* b = gen_int_expr env (d - 1) in
         let* op = G.oneofl [ "+"; "-"; "*" ] in
         G.return (Printf.sprintf "(%s %s %s)" a op b));
        (* division by a non-zero constant only *)
        (let* a = gen_int_expr env (d - 1) and* k = G.int_range 1 7 in
         let* op = G.oneofl [ "/"; "%" ] in
         G.return (Printf.sprintf "(%s %s %d)" a op k));
      ]

let gen_bool_expr env d =
  let cmp =
    let* a = gen_int_expr env (d - 1) and* b = gen_int_expr env (d - 1) in
    let* op = G.oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
    G.return (Printf.sprintf "(%s %s %s)" a op b)
  in
  let refcmp =
    let* p = G.oneofl env.pvars and* q = G.oneofl env.pvars in
    let* op = G.oneofl [ "=="; "!=" ] in
    G.return (Printf.sprintf "(%s %s %s)" p op q)
  in
  (* identity through the object graph: catches duplicated
     materializations that would break reference equality *)
  let field_refcmp =
    let* p = G.oneofl env.pvars and* q = G.oneofl env.pvars in
    let* op = G.oneofl [ "=="; "!=" ] in
    G.return (Printf.sprintf "(%s.next %s %s)" p op q)
  in
  let null_check = G.oneofl [ "(Main.g1 == null)"; "(Main.g1 != null)" ] in
  G.oneof [ cmp; refcmp; field_refcmp; null_check ]

let rec gen_stmt env lvl : string G.t =
  let simple =
    G.oneof
      [
        (let* v = G.oneofl env.ivars and* e = gen_int_expr env 2 in
         G.return (Printf.sprintf "%s%s = %s;" (indent lvl) v e));
        (let* p = G.oneofl env.pvars
         and* f = G.oneofl [ "a"; "b" ]
         and* e = gen_int_expr env 2 in
         G.return (Printf.sprintf "%s%s.%s = %s;" (indent lvl) p f e));
        (let* p = G.oneofl env.pvars in
         G.return (Printf.sprintf "%s%s = new P();" (indent lvl) p));
        (let* p = G.oneofl env.pvars and* q = G.oneofl env.pvars in
         G.return (Printf.sprintf "%s%s = %s;" (indent lvl) p q));
        (let* p = G.oneofl env.pvars and* q = G.oneofl env.pvars in
         G.return (Printf.sprintf "%s%s.next = %s;" (indent lvl) p q));
        (let* e = gen_int_expr env 1 in
         G.return (Printf.sprintf "%sprint(%s);" (indent lvl) e));
        (let* p = G.oneofl env.pvars in
         (* escape through a static *)
         G.return (Printf.sprintf "%sMain.g1 = %s;" (indent lvl) p));
        (let* e = gen_int_expr env 2 in
         G.return (Printf.sprintf "%sMain.g2 = %s;" (indent lvl) e));
        (let* i = G.int_range 0 2 and* e = gen_int_expr env 2 in
         G.return (Printf.sprintf "%sarr[%d] = %s;" (indent lvl) i e));
        G.return (Printf.sprintf "%sarr = new int[3];" (indent lvl));
        (* escaping the array defeats its virtualization *)
        G.return (Printf.sprintf "%sMain.garr = arr;" (indent lvl));
        (* rotate a receiver's dynamic type: drives the call sites on
           qvars from monomorphic through megamorphic *)
        (let* q = G.oneofl env.qvars and* cls = G.oneofl [ "A"; "B"; "C" ] in
         G.return (Printf.sprintf "%s%s = new %s();" (indent lvl) q cls));
        (let* q = G.oneofl env.qvars and* e = gen_int_expr env 2 in
         G.return (Printf.sprintf "%s%s.w = %s;" (indent lvl) q e));
        (let* v = G.oneofl env.ivars
         and* q = G.oneofl env.qvars
         and* e = gen_int_expr env 1 in
         G.return (Printf.sprintf "%s%s = %s.val(%s);" (indent lvl) v q e));
      ]
  in
  if env.depth <= 0 then simple
  else
    let env' = { env with depth = env.depth - 1 } in
    G.frequency
      [
        (5, simple);
        ( 2,
          let* cond = gen_bool_expr env 2
          and* thn = gen_block env' (lvl + 1)
          and* els = gen_block env' (lvl + 1) in
          G.return
            (Printf.sprintf "%sif %s {\n%s%s} else {\n%s%s}" (indent lvl) cond thn (indent lvl)
               els (indent lvl)) );
        ( 1,
          (* bounded loop with a dedicated counter *)
          let* n = G.int_range 1 6 and* body = gen_block env' (lvl + 1) in
          let counter = Printf.sprintf "k%d" lvl in
          G.return
            (Printf.sprintf "%s{ int %s = 0; while (%s < %d) {\n%s%s%s = %s + 1; } }" (indent lvl)
               counter counter n body (indent (lvl + 1)) counter counter) );
        ( 1,
          let* p = G.oneofl env.pvars and* body = gen_block env' (lvl + 1) in
          G.return
            (Printf.sprintf "%ssynchronized (%s) {\n%s%s}" (indent lvl) p body (indent lvl)) );
        ( 1,
          (* exceptions force the VM's interpreter-only bailout for main;
             callees still compile, so the unwind paths get exercised *)
          let* body = gen_block env' (lvl + 1)
          and* handler = gen_block env' (lvl + 1)
          and* p = G.oneofl env.pvars
          and* do_throw = G.bool in
          let thrown = if do_throw then Printf.sprintf "%sthrow %s;\n" (indent (lvl + 1)) p else "" in
          G.return
            (Printf.sprintf "%stry {\n%s%s%s} catch (P caught%d) {\n%s%scaught%d.a += 1;\n%s}"
               (indent lvl) body thrown (indent lvl) lvl handler (indent (lvl + 1)) lvl
               (indent lvl)) );
      ]

and gen_block env lvl : string G.t =
  let* n = G.int_range 1 4 in
  let* stmts = G.list_repeat n (gen_stmt env lvl) in
  G.return (String.concat "\n" stmts ^ "\n")

(* Fixed skeleton around the generated body: the P scratch class, a small
   A/B/C hierarchy whose [val] overrides disagree (so a wrongly
   devirtualized call changes the checksum), and two bounded recursive
   helpers — [recP] allocates per frame, putting virtual descriptors into
   the frame states of recursively inlined code. *)
let skeleton_classes =
  "class P { int a; int b; P next; }\n\
   class A { int w; int val(int x) { return x + w; } }\n\
   class B extends A { int val(int x) { return x * 2 - w; } }\n\
   class C extends A { int val(int x) { return w - 3 * x; } }\n"

let skeleton_helpers =
  "  static int rec(int n, int acc) {\n\
  \    if (n <= 0) return acc;\n\
  \    return Main.rec(n - 1, acc + n);\n\
  \  }\n\
  \  static int recP(int n) {\n\
  \    if (n <= 0) return 0;\n\
  \    P t = new P();\n\
  \    t.a = n;\n\
  \    return t.a + Main.recP(n - 1);\n\
  \  }\n"

let gen_program : string G.t =
  let env =
    { ivars = [ "i0"; "i1"; "i2" ]; pvars = [ "p0"; "p1" ]; qvars = [ "q0"; "q1" ]; depth = 3 }
  in
  let* body = gen_block env 2 in
  let checksum =
    "i0 + i1 * 3 + i2 * 5 + p0.a + p0.b * 7 + p1.a * 11 + p1.b + Main.g2 + g1v + garrv\n\
    \      + arr[0] + arr[1] * 17 + arr[2] * 19 + q0.val(5) + q1.val(7) * 31 + q0.w"
    |> String.split_on_char '\n'
    |> List.map String.trim |> String.concat " "
  in
  G.return
    (Printf.sprintf
       "%s\
        class Main {\n\
       \  static P g1;\n\
       \  static int g2;\n\
       \  static int[] garr;\n\
        %s\
       \  static int main() {\n\
       \    Main.g1 = null; Main.g2 = 0; Main.garr = null;\n\
       \    int i0 = 1; int i1 = 2; int i2 = 3;\n\
       \    P p0 = new P(); P p1 = new P();\n\
       \    A q0 = new B(); A q1 = new C();\n\
       \    int[] arr = new int[3];\n\
        %s\n\
       \    int g1v = 0;\n\
       \    if (Main.g1 != null) g1v = Main.g1.a + Main.g1.b;\n\
       \    int garrv = 0;\n\
       \    if (Main.garr != null) garrv = Main.garr[0] + Main.garr[1] * 13;\n\
       \    return %s;\n\
       \  }\n\
        }" skeleton_classes skeleton_helpers body checksum)

(* Like [gen_program], but main ends with a deopt trap: a freshly
   allocated object escapes only when a persistent iteration counter
   crosses 23. Driven for 25 iterations with compile_threshold 22, the
   branch is never taken while interpreted (22 samples, 0 taken — enough
   for the pruner), gets pruned at compilation, and then fires on
   iteration 24: a real deoptimization with the object virtual in the
   frame state under PEA. Iteration 25 runs the recompiled code. The
   checksum reads the object's fields after the branch, so rematerialized
   values flow into the result. *)
let gen_program_deopt : string G.t =
  let env =
    { ivars = [ "i0"; "i1"; "i2" ]; pvars = [ "p0"; "p1" ]; qvars = [ "q0"; "q1" ]; depth = 3 }
  in
  let* body = gen_block env 2 in
  G.return
    (Printf.sprintf
       "%s\
        class Main {\n\
       \  static P g1;\n\
       \  static int g2;\n\
       \  static int[] garr;\n\
       \  static int iterc;\n\
        %s\
       \  static int main() {\n\
       \    Main.iterc = Main.iterc + 1;\n\
       \    Main.g1 = null; Main.g2 = 0; Main.garr = null;\n\
       \    int i0 = 1; int i1 = 2; int i2 = 3;\n\
       \    P p0 = new P(); P p1 = new P();\n\
       \    A q0 = new B(); A q1 = new C();\n\
       \    int[] arr = new int[3];\n\
        %s\n\
       \    P d0 = new P();\n\
       \    d0.a = i0 + i1 + Main.iterc;\n\
       \    d0.b = Main.g2 + 7;\n\
       \    if (Main.iterc > 23) { Main.g1 = d0; print(d0.a); }\n\
       \    int g1v = 0;\n\
       \    if (Main.g1 != null) g1v = Main.g1.a + Main.g1.b;\n\
       \    int garrv = 0;\n\
       \    if (Main.garr != null) garrv = Main.garr[0] + Main.garr[1] * 13;\n\
       \    return i0 + i1 * 3 + i2 * 5 + p0.a + p0.b * 7 + p1.a * 11 + p1.b + Main.g2 + g1v + \
        garrv + arr[0] + arr[1] * 17 + arr[2] * 19 + d0.a * 23 + d0.b * 29 + q0.val(5) + \
        q1.val(7) * 31;\n\
       \  }\n\
        }" skeleton_classes skeleton_helpers body)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let string_of_result = function
  | None -> "void"
  | Some v -> Value.string_of_value v

let run_vm src opt =
  let program = Pea_bytecode.Link.compile_source src in
  let config = Test_env.apply { Jit.default_config with Jit.opt; compile_threshold = 0 } in
  let vm = Vm.create ~config program in
  Vm.run_main_iterations vm 3

let outcome_interp src =
  let r = Run.run_source src in
  (string_of_result r.Run.return_value, List.map Value.string_of_value r.Run.printed)

let outcome_vm (r : Vm.result) =
  (string_of_result r.Vm.return_value, List.map Value.string_of_value r.Vm.printed)

let prop_differential =
  QCheck2.Test.make ~name:"compiled semantics = interpreter semantics"
    ~count:(Test_env.qcheck_count 200) ~print:(fun s -> s) gen_program
    (fun src ->
      let ret_i, prints_i = outcome_interp src in
      let expected_prints = prints_i @ prints_i @ prints_i in
      List.for_all
        (fun opt ->
          let ret_c, prints_c = outcome_vm (run_vm src opt) in
          ret_c = ret_i && prints_c = expected_prints)
        [ Jit.O_none; Jit.O_ea; Jit.O_pea ])

(* Tier differential: interpreter, direct tier and closure tier agree on
   the last return value and the full print sequence at every opt level —
   through JIT compilation, speculative pruning and a forced deopt with a
   virtual object in the frame state (see [gen_program_deopt]) — and the
   two compiled tiers agree bit-for-bit on the deterministic counters.
   Deliberately not routed through [Test_env.apply]: forcing a tier from
   the environment would collapse the comparison. *)
let prop_tier_differential =
  let iters = 25 in
  let run src opt tier ~threshold =
    let program = Pea_bytecode.Link.compile_source src in
    let config =
      { Jit.default_config with Jit.opt; compile_threshold = threshold; exec_tier = tier }
    in
    let vm = Vm.create ~config program in
    let r = Vm.run_main_iterations vm iters in
    (outcome_vm r, r.Vm.stats)
  in
  QCheck2.Test.make ~name:"closure tier = direct tier = interpreter, with forced deopts"
    ~count:(Test_env.qcheck_count 60) ~print:(fun s -> s) gen_program_deopt
    (fun src ->
      (* reference: interpreter only (threshold never reached) *)
      let reference, _ = run src Jit.O_pea Jit.Direct ~threshold:max_int in
      List.for_all
        (fun opt ->
          let out_d, sd = run src opt Jit.Direct ~threshold:22 in
          let out_c, sc = run src opt Jit.Closure ~threshold:22 in
          out_d = reference && out_c = reference
          && sd.Stats.s_cycles = sc.Stats.s_cycles
          && sd.Stats.s_compiled_ops = sc.Stats.s_compiled_ops
          && sd.Stats.s_interpreted_instrs = sc.Stats.s_interpreted_instrs
          && sd.Stats.s_allocations = sc.Stats.s_allocations
          && sd.Stats.s_allocated_bytes = sc.Stats.s_allocated_bytes
          && sd.Stats.s_monitor_ops = sc.Stats.s_monitor_ops
          && sd.Stats.s_deopts = sc.Stats.s_deopts)
        [ Jit.O_none; Jit.O_ea; Jit.O_pea ])

let prop_alloc_monotone =
  QCheck2.Test.make ~name:"PEA/EA never increase allocations or monitors"
    ~count:(Test_env.qcheck_count 100) ~print:(fun s -> s) gen_program
    (fun src ->
      let none = run_vm src Jit.O_none in
      let ea = run_vm src Jit.O_ea in
      let pea = run_vm src Jit.O_pea in
      let a (r : Vm.result) = r.Vm.stats.Stats.s_allocations in
      let m (r : Vm.result) = r.Vm.stats.Stats.s_monitor_ops in
      a pea <= a none && a ea <= a none && a pea <= a ea && m pea <= m none)

let prop_pretty_roundtrip =
  QCheck2.Test.make ~name:"pretty-print roundtrip on random programs" ~count:120
    ~print:(fun s -> s) gen_program
    (fun src ->
      let ast1 = Pea_mjava.Parser.parse_program src in
      let printed1 = Pea_mjava.Pretty.program ast1 in
      let ast2 = Pea_mjava.Parser.parse_program printed1 in
      let printed2 = Pea_mjava.Pretty.program ast2 in
      (* fixpoint, and the printed program behaves like the original *)
      printed1 = printed2
      &&
      let r1 = Run.run_source src in
      let r2 = Run.run_source printed1 in
      r1.Run.return_value = r2.Run.return_value
      && List.map Value.string_of_value r1.Run.printed
         = List.map Value.string_of_value r2.Run.printed)

let prop_ir_checker_after_pea =
  QCheck2.Test.make ~name:"PEA output passes the IR checker on random programs"
    ~count:(Test_env.qcheck_count 100) ~print:(fun s -> s) gen_program
    (fun src ->
      let program = Pea_bytecode.Link.compile_source src in
      let m = Pea_bytecode.Link.entry_exn program in
      if Pea_bytecode.Classfile.uses_exceptions m then true (* interpreter-only, as in the VM *)
      else begin
      let g = Pea_ir.Builder.build m in
      ignore (Pea_opt.Inline.run (Pea_opt.Inline.default_config program) g);
      ignore (Pea_opt.Canonicalize.run g);
      let g', _ = Pea_core.Pea.run g in
      Pea_ir.Check.check_exn g';
      ignore (Pea_opt.Canonicalize.run g');
      Pea_ir.Check.check_exn g';
      (* speculation-safety verifier: zero false positives offline *)
      Pea_analysis.Spec_check.check ~phase:"pea" g' = []
      end)

(* Correctness tooling under fuzz: the every-phase verifier and the deopt
   oracle are forced on (overriding any matrix axis — the point is that
   they stay silent), while tier / compile-mode / OSR axes still come from
   the environment, so `bench/run_matrix.sh` sweeps this property across
   the whole cell matrix. Any SPEC violation aborts compilation with
   [Failure]; any replay divergence raises [Oracle.Divergence]; either
   fails the property. The forced deopt in [gen_program_deopt] guarantees
   the oracle actually replays, not just snapshots. *)
let prop_verified_execution =
  let iters = 25 in
  let run src opt ~threshold =
    let program = Pea_bytecode.Link.compile_source src in
    let config =
      {
        (Test_env.apply { Jit.default_config with Jit.opt; compile_threshold = threshold }) with
        Jit.check_level = Pea_analysis.Spec_check.Every_phase;
        oracle = true;
      }
    in
    let vm = Vm.create ~config program in
    outcome_vm (Vm.run_main_iterations vm iters)
  in
  QCheck2.Test.make ~name:"every-phase verifier + deopt oracle stay silent, semantics preserved"
    ~count:(Test_env.qcheck_count 60) ~print:(fun s -> s) gen_program_deopt
    (fun src ->
      (* reference: interpreter only (threshold never reached) *)
      let reference = run src Jit.O_pea ~threshold:max_int in
      List.for_all
        (fun opt -> run src opt ~threshold:22 = reference)
        [ Jit.O_none; Jit.O_ea; Jit.O_pea ])

(* Multi-tenant serving: K tenants sharing one code cache and one
   compile queue must be observationally indistinguishable from K
   isolated runs — every tenant's per-request results equal those of an
   interpreter-only VM over just that tenant's app and request stream.
   The opt × tier cell is drawn per case (the serving harness itself
   forces Sync + no OSR on tenant VMs, so those axes don't apply);
   env-driven axes (summaries, stackalloc, inlining, ...) still reach
   the shared compiles through [Test_env.apply]. *)
let prop_serving_matches_isolated =
  let module Server = Pea_serve.Server in
  let module Sessions = Pea_workloads.Sessions in
  let isolated_results (script : Server.script) =
    let vms =
      List.map
        (fun (_, app_idx) ->
          let _, src = List.nth script.Server.sc_apps app_idx in
          let program = Pea_bytecode.Link.compile_source ~require_main:false src in
          (program, Vm.create ~config:{ Jit.default_config with Jit.compile_threshold = max_int } program))
        script.Server.sc_tenants
    in
    let results = Array.make (List.length vms) [] in
    List.iter
      (fun (rq : Server.request) ->
        let program, vm = List.nth vms rq.Server.rq_tenant in
        let m = Pea_bytecode.Link.find_method program rq.Server.rq_class rq.Server.rq_method in
        let render =
          match Vm.invoke vm m (List.map (fun i -> Value.Vint i) rq.Server.rq_args) with
          | None -> "void"
          | Some v -> Value.string_of_value v
          | exception Interp.Mj_throw v -> "throw:" ^ Value.string_of_value v
          | exception Interp.Trap msg -> "trap:" ^ msg
        in
        results.(rq.Server.rq_tenant) <- render :: results.(rq.Server.rq_tenant))
      (List.concat script.Server.sc_rounds);
    Array.to_list (Array.map List.rev results)
  in
  let gen =
    let* tenants = G.int_range 2 4
    and* rounds = G.int_range 3 6
    and* requests_per_round = G.int_range 6 12
    and* seed = G.int_range 0 99999
    and* opt = G.oneofl [ Jit.O_none; Jit.O_ea; Jit.O_pea ]
    and* tier = G.oneofl [ Jit.Direct; Jit.Closure ] in
    G.return (tenants, rounds, requests_per_round, seed, opt, tier)
  in
  let print (tenants, rounds, rpr, seed, opt, tier) =
    Printf.sprintf "tenants=%d rounds=%d rpr=%d seed=%d opt=%s tier=%s" tenants rounds rpr seed
      (match opt with Jit.O_none -> "none" | Jit.O_ea -> "ea" | Jit.O_pea -> "pea")
      (match tier with Jit.Direct -> "direct" | Jit.Closure -> "closure")
  in
  QCheck2.Test.make ~name:"shared-cache serving = isolated per-tenant runs"
    ~count:(Test_env.qcheck_count 40) ~print gen
    (fun (tenants, rounds, requests_per_round, seed, opt, tier) ->
      let script = Sessions.mixed_script ~tenants ~rounds ~requests_per_round ~seed () in
      let sv_jit =
        {
          (Test_env.apply Jit.default_config) with
          Jit.opt;
          exec_tier = tier;
          compile_threshold = 4;
        }
      in
      let r = Server.run ~config:{ Server.default_config with Server.sv_jit } script in
      List.map (fun tr -> tr.Server.tr_results) r.Server.r_tenants = isolated_results script)

let () =
  Alcotest.run "properties"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_tier_differential;
          QCheck_alcotest.to_alcotest prop_alloc_monotone;
          QCheck_alcotest.to_alcotest prop_ir_checker_after_pea;
          QCheck_alcotest.to_alcotest prop_verified_execution;
          QCheck_alcotest.to_alcotest prop_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_serving_matches_isolated;
        ] );
    ]
