(* Unit and property tests for the support library. *)

open Pea_support

let test_dyn_array_basic () =
  let t = Dyn_array.create () in
  Alcotest.(check int) "empty length" 0 (Dyn_array.length t);
  let i0 = Dyn_array.push t 10 in
  let i1 = Dyn_array.push t 20 in
  Alcotest.(check int) "first index" 0 i0;
  Alcotest.(check int) "second index" 1 i1;
  Alcotest.(check int) "get 0" 10 (Dyn_array.get t 0);
  Alcotest.(check int) "get 1" 20 (Dyn_array.get t 1);
  Dyn_array.set t 0 99;
  Alcotest.(check int) "after set" 99 (Dyn_array.get t 0);
  Alcotest.(check (list int)) "to_list" [ 99; 20 ] (Dyn_array.to_list t)

let test_dyn_array_growth () =
  let t = Dyn_array.create () in
  for i = 0 to 999 do
    ignore (Dyn_array.push t i)
  done;
  Alcotest.(check int) "length" 1000 (Dyn_array.length t);
  for i = 0 to 999 do
    Alcotest.(check int) (Printf.sprintf "elem %d" i) i (Dyn_array.get t i)
  done

let test_dyn_array_bounds () =
  let t = Dyn_array.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Dyn_array: index 3 out of bounds (len 3)") (fun () ->
      ignore (Dyn_array.get t 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Dyn_array: index -1 out of bounds (len 3)") (fun () ->
      ignore (Dyn_array.get t (-1)))

let test_dyn_array_truncate () =
  let t = Dyn_array.of_list [ 1; 2; 3; 4 ] in
  Dyn_array.truncate t 2;
  Alcotest.(check (list int)) "after truncate" [ 1; 2 ] (Dyn_array.to_list t);
  let i = Dyn_array.push t 9 in
  Alcotest.(check int) "push reuses index" 2 i

let test_union_find_basic () =
  let u = Union_find.create 5 in
  Alcotest.(check int) "initially 5 sets" 5 (Union_find.n_sets u);
  Alcotest.(check bool) "0 and 1 initially separate" false (Union_find.same_set u 0 1);
  Union_find.union u 0 1;
  Alcotest.(check bool) "0 and 1 merged" true (Union_find.same_set u 0 1);
  Alcotest.(check int) "4 sets after one union" 4 (Union_find.n_sets u);
  Union_find.union u 1 2;
  Alcotest.(check bool) "0 and 2 transitively merged" true (Union_find.same_set u 0 2)

let test_union_find_escape_propagation () =
  let u = Union_find.create 4 in
  Union_find.mark_escaped u 0;
  Alcotest.(check bool) "0 escaped" true (Union_find.escaped u 0);
  Alcotest.(check bool) "1 not escaped" false (Union_find.escaped u 1);
  (* merging a non-escaped set into an escaped one taints it *)
  Union_find.union u 0 1;
  Alcotest.(check bool) "1 escaped after union with 0" true (Union_find.escaped u 1);
  (* and the other direction *)
  Union_find.union u 2 3;
  Union_find.mark_escaped u 3;
  Alcotest.(check bool) "2 escaped via set flag" true (Union_find.escaped u 2)

let test_union_find_idempotent_union () =
  let u = Union_find.create 3 in
  Union_find.union u 0 1;
  Union_find.union u 0 1;
  Union_find.union u 1 0;
  Alcotest.(check int) "sets" 2 (Union_find.n_sets u)

let prop_union_find_transitive =
  QCheck.Test.make ~name:"union-find: same_set is an equivalence" ~count:200
    QCheck.(pair (list (pair (int_bound 19) (int_bound 19))) (pair (int_bound 19) (int_bound 19)))
    (fun (unions, (a, b)) ->
      let u = Union_find.create 20 in
      List.iter (fun (x, y) -> Union_find.union u x y) unions;
      (* reflexive, symmetric *)
      Union_find.same_set u a a
      && Union_find.same_set u a b = Union_find.same_set u b a)

let prop_union_find_escape_monotone =
  QCheck.Test.make ~name:"union-find: escaped is monotone under unions" ~count:200
    QCheck.(pair (list (pair (int_bound 9) (int_bound 9))) (int_bound 9))
    (fun (unions, esc) ->
      let u = Union_find.create 10 in
      Union_find.mark_escaped u esc;
      List.iter (fun (x, y) -> Union_find.union u x y) unions;
      (* everything now in esc's set must report escaped *)
      List.for_all
        (fun x -> (not (Union_find.same_set u x esc)) || Union_find.escaped u x)
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])

let test_fresh () =
  let f = Fresh.create () in
  Alcotest.(check int) "first" 0 (Fresh.next f);
  Alcotest.(check int) "second" 1 (Fresh.next f);
  Alcotest.(check int) "peek" 2 (Fresh.peek f);
  Fresh.reserve f 10;
  Alcotest.(check int) "after reserve" 10 (Fresh.next f);
  Fresh.reserve f 5;
  Alcotest.(check int) "reserve never goes backwards" 11 (Fresh.next f)

let test_dot () =
  let d = Dot.create "g" in
  Dot.node d ~id:"a" ~label:"hello \"world\"" ~shape:"box" ();
  Dot.edge d ~src:"a" ~dst:"b" ~label:"x" ();
  let s = Dot.contents d in
  Alcotest.(check bool) "has digraph" true (String.length s > 0 && String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "escapes quotes" true
    (let sub = "\\\"world\\\"" in
     let rec contains i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "support"
    [
      ( "dyn_array",
        [
          Alcotest.test_case "basic" `Quick test_dyn_array_basic;
          Alcotest.test_case "growth" `Quick test_dyn_array_growth;
          Alcotest.test_case "bounds" `Quick test_dyn_array_bounds;
          Alcotest.test_case "truncate" `Quick test_dyn_array_truncate;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "escape propagation" `Quick test_union_find_escape_propagation;
          Alcotest.test_case "idempotent union" `Quick test_union_find_idempotent_union;
          QCheck_alcotest.to_alcotest prop_union_find_transitive;
          QCheck_alcotest.to_alcotest prop_union_find_escape_monotone;
        ] );
      ("fresh", [ Alcotest.test_case "sequence" `Quick test_fresh ]);
      ("dot", [ Alcotest.test_case "render" `Quick test_dot ]);
    ]
