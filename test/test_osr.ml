(* On-stack replacement and the per-site deoptimization policy.

   OSR: a loop that gets hot inside one interpreted invocation transfers
   the running frame into compiled code at a back edge (the paper's
   evaluation assumes methods reach the compiler; OSR is how a
   single-invocation benchmark does). Per-site policy: a deopt blacklists
   only the (method, bci) site that fired, so recompiled code keeps
   speculating — and scalar-replacing — everywhere else.

   Configs are built explicitly rather than through [Test_env.apply]:
   these tests compare OSR on against OSR off (or require OSR to fire),
   so forcing the axis from the environment would collapse them. *)

open Pea_bytecode
open Pea_rt
open Pea_vm
module Event = Pea_obs.Event
module Trace = Pea_obs.Trace

let vint n = Value.Vint n

let vbool b = Value.Vbool b

let as_int = function
  | Some (Value.Vint n) -> n
  | _ -> Alcotest.fail "expected an int result"

let outcome = Test_support.outcome

let with_tracer f = Test_support.with_tracer f

let count_deopt_terminators g =
  let n = ref 0 in
  Pea_ir.Graph.iter_blocks
    (fun b -> match b.Pea_ir.Graph.term with Pea_ir.Graph.Deopt _ -> incr n | _ -> ())
    g;
  !n

let count_alloc_nodes g =
  let n = ref 0 in
  Pea_ir.Graph.iter_blocks
    (fun b ->
      List.iter
        (fun (nd : Pea_ir.Node.t) ->
          match nd.Pea_ir.Node.op with
          | Pea_ir.Node.New _ | Pea_ir.Node.Alloc _ | Pea_ir.Node.New_array _
          | Pea_ir.Node.Alloc_array _ ->
              incr n
          | _ -> ())
        (Pea_ir.Graph.instr_list b))
    g;
  !n

(* ------------------------------------------------------------------ *)
(* OSR tiering                                                         *)
(* ------------------------------------------------------------------ *)

let hot_loop_src = Programs.hot_loop

(* A single invocation of a hot loop reaches the compiled tier through
   OSR: same result as the interpreter, the loop allocation is scalar-
   replaced for the remaining iterations, and normal-entry code is cached
   even though the invocation counter never fired. *)
let test_osr_single_invocation () =
  let reference = Run.run_source hot_loop_src in
  let program = Link.compile_source hot_loop_src in
  (* invocation counting can never compile: only OSR tiers up. Pruning
     off so the cold loop exit is not speculated away — its deopt would
     invalidate the cached code this test wants to observe (the pruning
     interaction is covered by the differential property below). *)
  let config =
    {
      Jit.default_config with
      Jit.compile_threshold = max_int;
      prune = false;
      osr = true;
      osr_threshold = 50;
    }
  in
  let vm = Vm.create ~config program in
  let r = Vm.run vm in
  Alcotest.(check int)
    "same result as the interpreter"
    (match reference.Run.return_value with Some (Value.Vint n) -> n | _ -> assert false)
    (as_int r.Vm.return_value);
  Alcotest.(check bool) "osr compile happened" true (r.Vm.stats.Stats.s_osr_compiles >= 1);
  Alcotest.(check bool) "osr entry happened" true (r.Vm.stats.Stats.s_osr_entries >= 1);
  let main = Link.entry_exn program in
  Alcotest.(check bool)
    "normal-entry code cached at OSR time" true
    (Vm.compiled_graph vm main <> None);
  (* 50 interpreter iterations allocate, the OSR-compiled remainder is
     scalar-replaced *)
  Alcotest.(check bool)
    "loop allocation virtualized after OSR" true
    (r.Vm.stats.Stats.s_allocations < reference.Run.stats.Stats.s_allocations);
  (* the model-cycle acceptance gate, in miniature (BENCH_osr.json is the
     full version): OSR must beat staying in the interpreter *)
  let interp_only =
    let vm = Vm.create ~config:{ config with Jit.osr = false } program in
    Vm.run vm
  in
  Alcotest.(check string)
    "bit-for-bit result parity with interpreter-only"
    (fst (outcome interp_only))
    (fst (outcome r));
  Alcotest.(check bool)
    "fewer model cycles than interpreter-only" true
    (r.Vm.stats.Stats.s_cycles < interp_only.Vm.stats.Stats.s_cycles)

(* OSR at the inner header of a loop nest: back edges must be classified
   from the OSR entry block, not from the method entry, or the outer
   latch edge is misread and construction fails. *)
let test_osr_nested_loops () =
  let src = Programs.nested_loops in
  let reference = Run.run_source src in
  let program = Link.compile_source src in
  let config =
    { Jit.default_config with Jit.compile_threshold = max_int; osr = true; osr_threshold = 50 }
  in
  let r = Vm.run (Vm.create ~config program) in
  Alcotest.(check int)
    "same result"
    (match reference.Run.return_value with Some (Value.Vint n) -> n | _ -> assert false)
    (as_int r.Vm.return_value);
  Alcotest.(check bool) "osr fired" true (r.Vm.stats.Stats.s_osr_entries >= 1)

(* The OSR promotion is a traced tier transition like any other. *)
let test_osr_trace_events () =
  let program = Link.compile_source hot_loop_src in
  let config =
    { Jit.default_config with Jit.compile_threshold = max_int; osr = true; osr_threshold = 50 }
  in
  let vm = Vm.create ~config program in
  with_tracer (fun t ->
      ignore (Vm.run vm);
      let events = List.map (fun e -> e.Trace.e_event) (Trace.entries t) in
      Alcotest.(check bool)
        "tier_promote osr traced" true
        (List.exists
           (function Event.Tier_promote { tier = "osr"; _ } -> true | _ -> false)
           events))

(* ------------------------------------------------------------------ *)
(* Per-site deopt policy                                               *)
(* ------------------------------------------------------------------ *)

(* Two independently-pruned cold branches. The allocation never escapes,
   so PEA scalar-replaces it fully; each pruned branch carries its own
   deopt site. *)
let two_branch_src = Programs.two_branch

let policy_setup ?(deopt_storm_limit = Jit.default_config.Jit.deopt_storm_limit) () =
  let program = Link.compile_source ~require_main:false two_branch_src in
  let config =
    { Jit.default_config with Jit.compile_threshold = 25; osr = false; deopt_storm_limit }
  in
  let vm = Vm.create ~config program in
  let f = Link.find_method program "C" "f" in
  (* profile both branches as never taken, then compile *)
  Vm.warm_up vm f [ vint 3; vbool false; vbool false ] 40;
  (vm, f)

(* One cold-path deopt must not cost the method its speculation: the
   recompiled code blacklists only the site that fired, keeps the other
   deopt site, and still scalar-replaces the allocation. *)
let test_per_site_blacklist () =
  let vm, f = policy_setup () in
  (match Vm.compiled_graph vm f with
  | None -> Alcotest.fail "not compiled after warm-up"
  | Some g ->
      Alcotest.(check int) "both cold branches pruned" 2 (count_deopt_terminators g);
      Alcotest.(check int) "fully scalar-replaced" 0 (count_alloc_nodes g));
  (* take cold branch A: deopt #1 *)
  Alcotest.(check int) "deopting call result" 8 (as_int (Vm.invoke vm f [ vint 7; vbool true; vbool false ]));
  Alcotest.(check int) "one deopt" 1 (Stats.get (Vm.stats vm) Stats.deopts);
  Alcotest.(check int) "one site blacklisted" 1 (List.length (Vm.blacklisted_sites vm f));
  Alcotest.(check int) "site_blacklists counter" 1 (Stats.get (Vm.stats vm) Stats.site_blacklists);
  (* next call recompiles: branch A compiled in, branch B still pruned,
     allocation still virtual *)
  let virtualized_before = (Vm.jit_stats vm).Pea_core.Pea.virtualized_allocs in
  ignore (Vm.invoke vm f [ vint 3; vbool false; vbool false ]);
  (match Vm.compiled_graph vm f with
  | None -> Alcotest.fail "not recompiled after deopt"
  | Some g ->
      Alcotest.(check int) "other site still speculated" 1 (count_deopt_terminators g);
      Alcotest.(check int) "still fully scalar-replaced" 0 (count_alloc_nodes g));
  Alcotest.(check bool)
    "recompile still virtualizes" true
    ((Vm.jit_stats vm).Pea_core.Pea.virtualized_allocs > virtualized_before);
  (* branch B was genuinely kept speculative: taking it deopts again *)
  Alcotest.(check int) "second cold branch deopts" 8
    (as_int (Vm.invoke vm f [ vint 7; vbool false; vbool true ]));
  Alcotest.(check int) "two deopts" 2 (Stats.get (Vm.stats vm) Stats.deopts);
  Alcotest.(check int) "two sites blacklisted" 2 (List.length (Vm.blacklisted_sites vm f));
  (* two invalidations are below the default storm limit *)
  Alcotest.(check bool) "not pinned" false (Vm.interpreter_pinned vm f);
  (* the fully-deopted recompile carries no speculation left *)
  ignore (Vm.invoke vm f [ vint 3; vbool false; vbool false ]);
  match Vm.compiled_graph vm f with
  | None -> Alcotest.fail "not recompiled"
  | Some g -> Alcotest.(check int) "no speculation left" 0 (count_deopt_terminators g)

(* Each deopt emits a Site_blacklist event naming the blacklist key. *)
let test_site_blacklist_event () =
  let vm, f = policy_setup () in
  with_tracer (fun t ->
      ignore (Vm.invoke vm f [ vint 7; vbool true; vbool false ]);
      let events = List.map (fun e -> e.Trace.e_event) (Trace.entries t) in
      Alcotest.(check bool)
        "site_blacklist traced" true
        (List.exists
           (function Event.Site_blacklist { meth = "C.f"; _ } -> true | _ -> false)
           events))

(* The deopt-storm guard: after [deopt_storm_limit] distinct
   invalidations the method is pinned to the interpreter and never
   recompiled. *)
let test_deopt_storm_pins () =
  let vm, f = policy_setup ~deopt_storm_limit:2 () in
  ignore (Vm.invoke vm f [ vint 7; vbool true; vbool false ]) (* deopt #1 *);
  Alcotest.(check bool) "not pinned yet" false (Vm.interpreter_pinned vm f);
  ignore (Vm.invoke vm f [ vint 3; vbool false; vbool false ]) (* recompile *);
  ignore (Vm.invoke vm f [ vint 7; vbool false; vbool true ]) (* deopt #2 *);
  Alcotest.(check bool) "pinned at the limit" true (Vm.interpreter_pinned vm f);
  Alcotest.(check bool) "compiled code invalidated" true (Vm.compiled_graph vm f = None);
  let deopts = Stats.get (Vm.stats vm) Stats.deopts in
  let compiles = Stats.get (Vm.stats vm) Stats.compiled_methods in
  for i = 1 to 10 do
    Alcotest.(check int) "pinned calls still correct" (i + 1)
      (as_int (Vm.invoke vm f [ vint i; vbool true; vbool true ]))
  done;
  Alcotest.(check int) "no further deopts" deopts (Stats.get (Vm.stats vm) Stats.deopts);
  Alcotest.(check int) "no further compiles" compiles
    (Stats.get (Vm.stats vm) Stats.compiled_methods);
  Alcotest.(check bool) "still not recompiled" true (Vm.compiled_graph vm f = None)

(* ------------------------------------------------------------------ *)
(* Compiled-tier invocation profiling                                  *)
(* ------------------------------------------------------------------ *)

(* The compiled tier must keep feeding the invocation profile: 5 calls
   through a threshold of 2 still report 5 profiled invocations (the
   compiled tier used to stop recording, freezing the count at the
   compile threshold). *)
let test_compiled_invocations_profiled () =
  let src = "class C { static int f(int x) { return x * 2 + 1; } }" in
  let program = Link.compile_source ~require_main:false src in
  let config = { Jit.default_config with Jit.compile_threshold = 2; osr = false } in
  let vm = Vm.create ~config program in
  let f = Link.find_method program "C" "f" in
  for i = 1 to 5 do
    Alcotest.(check int) "result" ((i * 2) + 1) (as_int (Vm.invoke vm f [ vint i ]))
  done;
  Alcotest.(check int) "stats count every call" 5 (Stats.get (Vm.stats vm) Stats.invocations);
  Alcotest.(check int) "profile counts every call" 5 (Profile.invocations (Vm.profile vm) f)

(* ------------------------------------------------------------------ *)
(* Differential property                                               *)
(* ------------------------------------------------------------------ *)

let string_of_result = function None -> "void" | Some v -> Value.string_of_value v

(* OSR on/off × {none,ea,pea} × {direct,closure}: every cell returns and
   prints exactly what the interpreter does; the two execution tiers
   agree bit-for-bit on the deterministic counters at fixed OSR; and at
   O_none (no scalar replacement anywhere) OSR cannot change the heap
   counters at all. Under EA/PEA an earlier tier-up legitimately
   removes allocations, so on-vs-off heap parity is only required at
   O_none. *)
let prop_osr_differential =
  let iters = 8 in
  let module G = QCheck2.Gen in
  let gen =
    G.map2
      (fun (name, src) opt -> (name, src, opt))
      (G.oneofl Programs.corpus)
      (G.oneofl [ Jit.O_none; Jit.O_ea; Jit.O_pea ])
  in
  let run src opt tier ~osr =
    let program = Pea_bytecode.Link.compile_source src in
    let config =
      {
        Jit.default_config with
        Jit.opt;
        exec_tier = tier;
        compile_threshold = 4;
        osr;
        osr_threshold = 3;
      }
    in
    let r = Vm.run_main_iterations (Vm.create ~config program) iters in
    (outcome r, r.Vm.stats)
  in
  QCheck2.Test.make ~name:"osr on/off: same results, prints and heap counters"
    ~count:(Test_env.qcheck_count 40)
    ~print:(fun (name, _, opt) ->
      Printf.sprintf "%s opt=%s" name
        (match opt with Jit.O_none -> "none" | Jit.O_ea -> "ea" | Jit.O_pea -> "pea"))
    gen
    (fun (_, src, opt) ->
      let ri = Run.run_source src in
      let reference =
        ( string_of_result ri.Run.return_value,
          List.concat (List.init iters (fun _ -> List.map Value.string_of_value ri.Run.printed))
        )
      in
      let od, sd_on = run src opt Jit.Direct ~osr:true in
      let oc, sc_on = run src opt Jit.Closure ~osr:true in
      let od', sd_off = run src opt Jit.Direct ~osr:false in
      let oc', sc_off = run src opt Jit.Closure ~osr:false in
      let tier_parity (a : Stats.snapshot) (b : Stats.snapshot) =
        a.Stats.s_cycles = b.Stats.s_cycles
        && a.Stats.s_allocations = b.Stats.s_allocations
        && a.Stats.s_allocated_bytes = b.Stats.s_allocated_bytes
        && a.Stats.s_monitor_ops = b.Stats.s_monitor_ops
        && a.Stats.s_deopts = b.Stats.s_deopts
        && a.Stats.s_osr_entries = b.Stats.s_osr_entries
        && a.Stats.s_osr_compiles = b.Stats.s_osr_compiles
      in
      od = reference && oc = reference && od' = reference && oc' = reference
      && tier_parity sd_on sc_on && tier_parity sd_off sc_off
      && (opt <> Jit.O_none
         || sd_on.Stats.s_allocations = sd_off.Stats.s_allocations
            && sd_on.Stats.s_allocated_bytes = sd_off.Stats.s_allocated_bytes
            && sd_on.Stats.s_monitor_ops = sd_off.Stats.s_monitor_ops))

let () =
  Alcotest.run "osr"
    [
      ( "osr",
        [
          Alcotest.test_case "single invocation tiers up" `Quick test_osr_single_invocation;
          Alcotest.test_case "nested loops" `Quick test_osr_nested_loops;
          Alcotest.test_case "trace events" `Quick test_osr_trace_events;
        ] );
      ( "policy",
        [
          Alcotest.test_case "per-site blacklist" `Quick test_per_site_blacklist;
          Alcotest.test_case "site_blacklist event" `Quick test_site_blacklist_event;
          Alcotest.test_case "deopt storm pins" `Quick test_deopt_storm_pins;
        ] );
      ( "profile",
        [
          Alcotest.test_case "compiled invocations profiled" `Quick
            test_compiled_invocations_profiled;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_osr_differential ] );
    ]
