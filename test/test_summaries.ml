(* Unit and end-to-end tests for interprocedural escape summaries
   (Pea_analysis.Summary): the per-parameter escape lattice, return
   freshness, purity, convergence under (mutual) recursion, the CHA join
   at virtual call sites, and the payoff — with summaries, PEA keeps an
   allocation virtual across a non-inlined call that would otherwise
   force materialization. *)

open Pea_bytecode
open Pea_analysis
open Pea_rt
open Pea_vm

let analyze src =
  let program = Link.compile_source ~require_main:false src in
  (program, Summary.analyze program)

let summary_of (program, t) cls name = Summary.of_method t (Link.find_method program cls name)

let lvl = Alcotest.testable (fun fmt l ->
    Format.pp_print_string fmt
      (match l with
      | Summary.No_escape -> "No_escape"
      | Summary.Arg_escape -> "Arg_escape"
      | Summary.Global_escape -> "Global_escape"))
    ( = )

(* ------------------------------------------------------------------ *)
(* Direct summaries                                                    *)
(* ------------------------------------------------------------------ *)

let basics_src =
  "class Box { int v; }\n\
   class C {\n\
  \  static Box g;\n\
  \  static void leak(Box b) { C.g = b; }\n\
  \  static int read(Box b) { return b.v; }\n\
  \  static void write(Box b) { b.v = 1; }\n\
  \  static Box same(Box b) { return b; }\n\
  \  static Box make() { return new Box(); }\n\
   }"

let test_global_escape_via_static_store () =
  let env = analyze basics_src in
  let s = summary_of env "C" "leak" in
  Alcotest.check lvl "param escapes globally" Summary.Global_escape s.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.(check bool) "not pure" false s.Summary.s_pure

let test_read_only_param () =
  let env = analyze basics_src in
  let s = summary_of env "C" "read" in
  Alcotest.check lvl "no escape" Summary.No_escape s.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.(check bool) "not written" false s.Summary.s_params.(0).Summary.ps_written;
  Alcotest.(check bool) "no ref loads (int field)" false s.Summary.s_params.(0).Summary.ps_ref_loaded;
  Alcotest.(check bool) "transparent" true (Summary.transparent s.Summary.s_params.(0));
  Alcotest.(check bool) "pure" true s.Summary.s_pure;
  Alcotest.(check bool) "reads heap" true s.Summary.s_reads_heap

let test_written_param () =
  let env = analyze basics_src in
  let s = summary_of env "C" "write" in
  Alcotest.check lvl "no escape" Summary.No_escape s.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.(check bool) "written" true s.Summary.s_params.(0).Summary.ps_written;
  Alcotest.(check bool) "not transparent" false (Summary.transparent s.Summary.s_params.(0));
  Alcotest.(check bool) "not pure" false s.Summary.s_pure

let test_returned_param () =
  let env = analyze basics_src in
  let s = summary_of env "C" "same" in
  Alcotest.check lvl "arg escape" Summary.Arg_escape s.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.(check bool) "return not fresh" false s.Summary.s_ret_fresh

let test_fresh_return () =
  let env = analyze basics_src in
  let s = summary_of env "C" "make" in
  Alcotest.(check bool) "return fresh" true s.Summary.s_ret_fresh

(* ------------------------------------------------------------------ *)
(* Recursion                                                           *)
(* ------------------------------------------------------------------ *)

let test_recursion_converges () =
  let env =
    analyze
      "class Box { int v; }\n\
       class R {\n\
      \  static int depth(Box b, int n) { if (n <= 0) return b.v; return R.depth(b, n - 1); }\n\
       }"
  in
  let s = summary_of env "R" "depth" in
  Alcotest.check lvl "recursive read-only param stays clean" Summary.No_escape
    s.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.(check bool) "pure" true s.Summary.s_pure

let test_recursive_leak_is_sound () =
  let env =
    analyze
      "class Box { int v; }\n\
       class R {\n\
      \  static Box g;\n\
      \  static int down(Box b, int n) { if (n <= 0) return 0; return R.leak(b, n); }\n\
      \  static int leak(Box b, int n) { R.g = b; return R.down(b, n - 1); }\n\
       }"
  in
  (* the escape happens one call deep in a mutually recursive pair: the
     fixpoint must propagate it back to both entry points *)
  let down = summary_of env "R" "down" in
  let leak = summary_of env "R" "leak" in
  Alcotest.check lvl "leak param escapes" Summary.Global_escape
    leak.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.check lvl "escape propagates through caller" Summary.Global_escape
    down.Summary.s_params.(0).Summary.ps_escape;
  Alcotest.(check bool) "down impure" false down.Summary.s_pure

let test_mutual_recursion_pure () =
  let env =
    analyze
      "class R {\n\
      \  static int even(int n) { if (n == 0) return 1; return R.odd(n - 1); }\n\
      \  static int odd(int n) { if (n == 0) return 0; return R.even(n - 1); }\n\
       }"
  in
  let s = summary_of env "R" "even" in
  Alcotest.(check bool) "pure" true s.Summary.s_pure;
  Alcotest.(check bool) "no heap reads" false s.Summary.s_reads_heap

(* ------------------------------------------------------------------ *)
(* Virtual dispatch: CHA join vs exact receiver                        *)
(* ------------------------------------------------------------------ *)

let dispatch_src =
  "class Box { int v; }\n\
   class Sink { static Box s; }\n\
   class A { int use(Box b) { return b.v; } }\n\
   class B extends A { int use(Box b) { Sink.s = b; return 1; } }"

let test_cha_join () =
  let program, t = analyze dispatch_src in
  let m = Link.find_method program "A" "use" in
  (* A.use alone is harmless... *)
  let own = Summary.of_method t m in
  Alcotest.check lvl "A.use itself is clean" Summary.No_escape
    own.Summary.s_params.(1).Summary.ps_escape;
  (* ...but a virtual call must join in the B.use override, which leaks *)
  let joined = Summary.call_summary t Pea_ir.Node.Virtual m in
  Alcotest.check lvl "virtual join includes the override" Summary.Global_escape
    joined.Summary.s_params.(1).Summary.ps_escape;
  Alcotest.(check bool) "join is impure" false joined.Summary.s_pure

let test_exact_receiver_skips_join () =
  let program, t = analyze dispatch_src in
  let m = Link.find_method program "A" "use" in
  let a = List.find (fun c -> c.Classfile.cls_name = "A") program.Link.classes in
  let exact = Summary.exact_summary t a m in
  Alcotest.check lvl "exact receiver A avoids the join" Summary.No_escape
    exact.Summary.s_params.(1).Summary.ps_escape;
  Alcotest.(check bool) "exact A.use is pure" true exact.Summary.s_pure

(* ------------------------------------------------------------------ *)
(* End to end: summaries avoid materialization at a non-inlined call   *)
(* ------------------------------------------------------------------ *)

(* [use] is never inlined (inlining disabled below): without summaries
   PEA must materialize the Key at the call; with them it stays virtual
   and is passed as an uncharged scratch object. *)
let e2e_src =
  "class Key { int a; int b; }\n\
   class Main {\n\
  \  static int use(Key k) { return k.a + k.b; }\n\
  \  static int main() {\n\
  \    int acc = 0;\n\
  \    int i = 0;\n\
  \    while (i < 20) {\n\
  \      Key k = new Key();\n\
  \      k.a = i;\n\
  \      k.b = i + i;\n\
  \      acc = acc + Main.use(k);\n\
  \      i = i + 1;\n\
  \    }\n\
  \    return acc;\n\
  \  }\n\
   }"

let run_e2e ~summaries =
  let cfg =
    { Jit.default_config with
      Jit.opt = Jit.O_pea;
      inline = false;
      compile_threshold = 0;
      summaries
    }
  in
  let program = Link.compile_source e2e_src in
  let vm = Vm.create ~config:cfg program in
  Vm.run_main_iterations vm 5

let test_summaries_keep_allocation_virtual () =
  let with_s = run_e2e ~summaries:true in
  let without_s = run_e2e ~summaries:false in
  (* same semantics *)
  let str r =
    match r.Vm.return_value with None -> "void" | Some v -> Value.string_of_value v
  in
  Alcotest.(check string) "same result" (str without_s) (str with_s);
  let allocs (r : Vm.result) = r.Vm.stats.Stats.s_allocations in
  let bytes (r : Vm.result) = r.Vm.stats.Stats.s_allocated_bytes in
  if allocs with_s >= allocs without_s then
    Alcotest.failf "summaries did not reduce allocations (%d >= %d)" (allocs with_s)
      (allocs without_s);
  if bytes with_s >= bytes without_s then
    Alcotest.failf "summaries did not reduce allocated bytes (%d >= %d)" (bytes with_s)
      (bytes without_s);
  Alcotest.(check bool) "scratch objects were used" true
    (with_s.Vm.stats.Stats.s_stack_allocs > 0);
  Alcotest.(check int) "no scratch objects without summaries" 0
    without_s.Vm.stats.Stats.s_stack_allocs

let test_e2e_matches_interpreter () =
  let reference = Run.run_source e2e_src in
  let with_s = run_e2e ~summaries:true in
  let str_ref = function None -> "void" | Some v -> Value.string_of_value v in
  Alcotest.(check string) "interpreter agrees" (str_ref reference.Run.return_value)
    (match with_s.Vm.return_value with None -> "void" | Some v -> Value.string_of_value v)

let () =
  Alcotest.run "summaries"
    [
      ( "direct",
        [
          Alcotest.test_case "static store escapes globally" `Quick
            test_global_escape_via_static_store;
          Alcotest.test_case "read-only param" `Quick test_read_only_param;
          Alcotest.test_case "written param" `Quick test_written_param;
          Alcotest.test_case "returned param" `Quick test_returned_param;
          Alcotest.test_case "fresh return" `Quick test_fresh_return;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "converges" `Quick test_recursion_converges;
          Alcotest.test_case "leak is sound" `Quick test_recursive_leak_is_sound;
          Alcotest.test_case "mutual recursion pure" `Quick test_mutual_recursion_pure;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "CHA join" `Quick test_cha_join;
          Alcotest.test_case "exact receiver" `Quick test_exact_receiver_skips_join;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "keeps allocation virtual" `Quick
            test_summaries_keep_allocation_virtual;
          Alcotest.test_case "matches interpreter" `Quick test_e2e_matches_interpreter;
        ] );
    ]
