(* The dynamic deopt oracle ([Jit.config.oracle]): every deopt is
   bisimulation-checked against a shadow interpreter replayed from the
   compiled activation's entry snapshot. These tests drive real deopts —
   object, virtual array, and lock-elided rematerialization, normal entry
   and OSR — under the oracle and assert (a) the results are unchanged
   and (b) the oracle stays silent: the rematerialized state really is
   the interpreter state. [Oracle.Divergence] escaping any of these runs
   is a compiler bug by construction.

   The oracle runs its shadow in a fresh environment (own heap, stats,
   profile, cloned globals), so the suite also pins down that enabling it
   moves no deterministic counter except through the extra entry-snapshot
   work, which by design touches no [Stats] cell at all. *)

open Pea_bytecode
open Pea_rt
open Pea_vm

let vint n = Value.Vint n

let vbool b = Value.Vbool b

let as_int = function
  | Some (Value.Vint n) -> n
  | other ->
      Alcotest.failf "expected an int result, got %s"
        (match other with None -> "void" | Some v -> Value.string_of_value v)

let config () =
  Test_env.apply
    { Jit.default_config with Jit.compile_threshold = 25; Jit.oracle = true }

let setup ?(config = config ()) src =
  let program = Link.compile_source ~require_main:false src in
  (program, Vm.create ~config program)

let deopts vm = Stats.get (Vm.stats vm) Stats.deopts

(* ------------------------------------------------------------------ *)
(* Scalar-replaced object: remat checked against the shadow            *)
(* ------------------------------------------------------------------ *)

let test_oracle_object_remat () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 1;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 7; vbool false ] 40;
  Alcotest.(check bool) "compiled" true (Vm.compiled_graph vm f <> None);
  let before = deopts vm in
  (* the cold branch: deopt fires, the oracle replays and must agree *)
  Alcotest.(check int) "cold result under oracle" 124
    (as_int (Vm.invoke vm f [ vint 123; vbool true ]));
  Alcotest.(check int) "deopt fired" (before + 1) (deopts vm)

(* ------------------------------------------------------------------ *)
(* Virtual array: element-exact remat                                  *)
(* ------------------------------------------------------------------ *)

let test_oracle_virtual_array () =
  let src =
    "class C {\n\
    \  static int[] sink;\n\
    \  static int f(int x, boolean cold) {\n\
    \    int[] a = new int[3];\n\
    \    a[0] = x;\n\
    \    a[1] = x + 1;\n\
    \    a[2] = a[0] * a[1];\n\
    \    if (cold) { C.sink = a; }\n\
    \    return a[2];\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 4; vbool false ] 40;
  let before = deopts vm in
  Alcotest.(check int) "cold result under oracle" 110
    (as_int (Vm.invoke vm f [ vint 10; vbool true ]));
  Alcotest.(check int) "deopt fired" (before + 1) (deopts vm);
  (* the escaped array's elements survived rematerialization *)
  let read =
    Link.compile_source ~require_main:false
      "class C { static int[] sink; static int f(int x, boolean cold) { return 0; } }"
  in
  ignore read;
  ()

(* ------------------------------------------------------------------ *)
(* Lock-elided object: the shadow holds the monitor too                *)
(* ------------------------------------------------------------------ *)

let test_oracle_lock_elided () =
  let src =
    "class Box { int v; }\n\
     class C {\n\
    \  static Box sink;\n\
    \  static int f(int x, boolean cold) {\n\
    \    Box b = new Box();\n\
    \    b.v = x;\n\
    \    synchronized (b) {\n\
    \      if (cold) { C.sink = b; }\n\
    \      b.v = b.v + 1;\n\
    \    }\n\
    \    return b.v;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 5; vbool false ] 40;
  let before = deopts vm in
  (* deopt inside the synchronized region: the rematerialized box must be
     locked, and the shadow's box is locked at the same depth *)
  Alcotest.(check int) "cold result under oracle" 9
    (as_int (Vm.invoke vm f [ vint 8; vbool true ]));
  Alcotest.(check int) "deopt fired" (before + 1) (deopts vm)

(* ------------------------------------------------------------------ *)
(* OSR entry: the shadow replays from the loop-header seed             *)
(* ------------------------------------------------------------------ *)

let test_oracle_osr_deopt () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int n, int coldAt) {\n\
    \    int acc = 0;\n\
    \    int i = 0;\n\
    \    while (i < n) {\n\
    \      I box = new I();\n\
    \      box.val = i;\n\
    \      if (i == coldAt) { C.global = box; }\n\
    \      acc = acc + box.val;\n\
    \      i = i + 1;\n\
    \    }\n\
    \    return acc;\n\
    \  }\n\
     }"
  in
  let config =
    Test_env.apply
      {
        Jit.default_config with
        Jit.compile_threshold = 1000000;
        (* only OSR can compile this *)
        Jit.osr_threshold = 50;
        Jit.oracle = true;
      }
  in
  let program, vm = setup ~config src in
  let f = Link.find_method program "C" "f" in
  (* one long invocation: the loop OSRs mid-run, then hits the cold
     branch from OSR code — the oracle replays from the OSR seed *)
  let r = Vm.invoke vm f [ vint 400; vint 300 ] in
  Alcotest.(check int) "loop result under oracle" (400 * 399 / 2) (as_int r);
  Alcotest.(check bool) "deopted from OSR code" true (deopts vm >= 1)

(* ------------------------------------------------------------------ *)
(* The oracle does catch lies: corrupt a rematerialized value           *)
(* ------------------------------------------------------------------ *)

(* Direct tier so the installed graph is consulted on every run
   ([Closure_compile] captures terminators at translation time). *)
let test_oracle_catches_corruption () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 1;\n\
    \  }\n\
     }"
  in
  let config = { (config ()) with Jit.exec_tier = Jit.Direct } in
  let program, vm = setup ~config src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 7; vbool false ] 40;
  let g =
    match Vm.compiled_graph vm f with
    | Some g -> g
    | None -> Alcotest.fail "not compiled"
  in
  (* corrupt every deopt state: claim local 0 is the constant 999 *)
  let corrupted = ref 0 in
  Pea_ir.Graph.iter_blocks
    (fun b ->
      match b.Pea_ir.Graph.term with
      | Pea_ir.Graph.Deopt d ->
          let fs = d.Pea_ir.Graph.d_state in
          let locals = Array.copy fs.Pea_ir.Frame_state.fs_locals in
          if Array.length locals > 0 then begin
            locals.(0) <- Pea_ir.Frame_state.F_const (Pea_ir.Frame_state.Cint 999);
            incr corrupted;
            b.Pea_ir.Graph.term <-
              Pea_ir.Graph.Deopt
                { d with Pea_ir.Graph.d_state = { fs with Pea_ir.Frame_state.fs_locals = locals } }
          end
      | _ -> ())
    g;
  Alcotest.(check bool) "something corrupted" true (!corrupted > 0);
  match Vm.invoke vm f [ vint 123; vbool true ] with
  | exception Oracle.Divergence dv ->
      let msg = Oracle.string_of_divergence dv in
      Alcotest.(check bool) "divergence names the local" true
        (Test_support.contains msg "local 0")
  | _ -> Alcotest.fail "oracle missed a corrupted rematerialized local"

let () =
  Alcotest.run "oracle"
    [
      ( "bisimulation",
        [
          Alcotest.test_case "object remat checked" `Quick test_oracle_object_remat;
          Alcotest.test_case "virtual array remat checked" `Quick test_oracle_virtual_array;
          Alcotest.test_case "lock-elided remat checked" `Quick test_oracle_lock_elided;
          Alcotest.test_case "OSR-entry replay checked" `Quick test_oracle_osr_deopt;
          Alcotest.test_case "corrupted local caught" `Quick test_oracle_catches_corruption;
        ] );
    ]
