(* Stack-allocation tier tests: frame-bounded materializations land in
   the frame's stack region instead of the heap, are reclaimed in O(1)
   at frame pop, and are promoted to real heap objects when a deopt
   makes them outlive their compiled frame.

   The accounting cases deliberately bypass [Test_env.apply]: they
   compare stack allocation on vs off (and optimization levels against
   each other), and forcing either axis from the environment would
   collapse the comparison. The differential property at the end is the
   axis-friendly half: whatever the configuration, results must match
   the interpreter and the stack-region counters must balance.

   This file also carries the flight-recorder write-failure regression:
   a dump that cannot be written must warn on stderr and leave the run's
   result untouched (it used to be silently swallowed). *)

open Pea_bytecode
open Pea_rt
open Pea_vm
module Trace = Pea_obs.Trace
module Flight = Pea_obs.Flight

(* A Point allocated on both arms of a branch and merged: PEA cannot
   keep the two virtual objects virtual across the merge, so the site
   materializes — but the object never leaves [work]'s frame, so the
   materialization is stack-eligible. No object is ever passed to a
   callee, so the program produces no scratch allocations and the
   stack-region counters must balance exactly. *)
let merge_src =
  "class Point { int x; int y; Point(int x, int y) { this.x = x; this.y = y; } }\n\
   class Main {\n\
  \  static int work(int i) {\n\
  \    Point p;\n\
  \    if (i % 2 == 0) { p = new Point(i, 1); } else { p = new Point(i, 2); }\n\
  \    return p.x + p.y;\n\
  \  }\n\
  \  static int main() {\n\
  \    int acc = 0;\n\
  \    int i = 0;\n\
  \    while (i < 400) { acc = acc + Main.work(i); i = i + 1; }\n\
  \    return acc;\n\
  \  }\n\
   }"

(* The merged Point is live across a branch that the profile sees as
   never taken; once [work] compiles from a mature profile the branch is
   pruned to a deopt. Iteration 900 takes it: the deopt fires with the
   stack-allocated Point live in the resume state, so the deopt handler
   must promote it to the heap before the frame's region is reclaimed. *)
let deopt_promote_src =
  "class Point { int x; int y; Point(int x, int y) { this.x = x; this.y = y; } }\n\
   class Main {\n\
  \  static int work(int i, int flip) {\n\
  \    Point p;\n\
  \    if (i % 2 == 0) { p = new Point(i, 1); } else { p = new Point(i, 2); }\n\
  \    int r = p.x;\n\
  \    if (flip == 1) { r = r + p.y * 10; }\n\
  \    return r + p.y;\n\
  \  }\n\
  \  static int main() {\n\
  \    int acc = 0;\n\
  \    int i = 0;\n\
  \    while (i < 1000) {\n\
  \      int flip = 0;\n\
  \      if (i == 900) { flip = 1; }\n\
  \      acc = acc + Main.work(i, flip);\n\
  \      i = i + 1;\n\
  \    }\n\
  \    return acc;\n\
  \  }\n\
   }"

let run ?(iterations = 3) ?(threshold = 4) ?(opt = Jit.O_pea) ?(stackalloc = true) src =
  let config =
    {
      Jit.default_config with
      Jit.compile_threshold = threshold;
      opt;
      stackalloc;
      oracle = true;
    }
  in
  let vm = Vm.create ~config (Link.compile_source src) in
  let r = Vm.run_main_iterations vm iterations in
  Vm.quiesce vm;
  r

(* ------------------------------------------------------------------ *)
(* Scratch/heap accounting                                             *)
(* ------------------------------------------------------------------ *)

(* The audit the heap counters must pass: a stack allocation is never
   also counted as a heap allocation. Turning the tier off converts
   every stack allocation back into exactly one heap allocation, so
     allocs(off) = allocs(on) - promotions(on) + stack_allocs(on)
   (a promoted object is charged to the heap at promotion time and was
   counted as a stack allocation at birth, hence the correction), and
   every stack-region object is reclaimed or promoted, never both. *)
let test_accounting_parity () =
  let iterations = 3 in
  let reference = Test_support.interp_reference ~iterations merge_src in
  let r_none = run ~iterations ~opt:Jit.O_none ~stackalloc:false merge_src in
  let r_ea = run ~iterations ~opt:Jit.O_ea ~stackalloc:false merge_src in
  let r_off = run ~iterations ~opt:Jit.O_pea ~stackalloc:false merge_src in
  let r_on = run ~iterations ~opt:Jit.O_pea ~stackalloc:true merge_src in
  List.iter
    (fun (label, r) ->
      Alcotest.(check (pair string (list string)))
        (label ^ " matches the interpreter") reference (Test_support.outcome r))
    [ ("O_none", r_none); ("O_ea", r_ea); ("pea/stackalloc=off", r_off);
      ("pea/stackalloc=on", r_on) ];
  let s_off = r_off.Vm.stats and s_on = r_on.Vm.stats in
  Alcotest.(check bool) "the tier actually stack-allocates" true
    (s_on.Stats.s_stack_allocs > 0);
  Alcotest.(check int) "stackalloc=off places nothing in stack regions" 0
    s_off.Stats.s_stack_allocs;
  Alcotest.(check int) "every stack object is reclaimed or promoted"
    s_on.Stats.s_stack_allocs
    (s_on.Stats.s_stack_reclaimed + s_on.Stats.s_stack_promotions);
  Alcotest.(check int) "no double counting: off = on - promotions + stack"
    s_off.Stats.s_allocations
    (s_on.Stats.s_allocations - s_on.Stats.s_stack_promotions + s_on.Stats.s_stack_allocs);
  Alcotest.(check bool) "the tier removes heap allocations" true
    (s_on.Stats.s_allocations < s_off.Stats.s_allocations);
  (* allocation monotonicity along the optimization ladder still holds *)
  Alcotest.(check bool) "pea <= ea <= none heap allocations" true
    (s_off.Stats.s_allocations <= r_ea.Vm.stats.Stats.s_allocations
    && r_ea.Vm.stats.Stats.s_allocations <= r_none.Vm.stats.Stats.s_allocations)

(* ------------------------------------------------------------------ *)
(* Deopt-time promotion                                                *)
(* ------------------------------------------------------------------ *)

(* Threshold 30 so [work] compiles from >= 20 profile samples of the
   never-taken branch (the pruning heuristic's minimum) and the branch
   really is speculated away. The oracle bisimulates the deopt against
   a shadow interpreter replay, so a promotion that left a dangling or
   scrubbed object in the resume state would abort here. *)
let test_deopt_promotion () =
  let iterations = 3 in
  let reference = Test_support.interp_reference ~iterations deopt_promote_src in
  let r = run ~iterations ~threshold:30 ~stackalloc:true deopt_promote_src in
  Alcotest.(check (pair string (list string)))
    "result survives the promoting deopt" reference (Test_support.outcome r);
  Alcotest.(check bool) "a deopt fired" true (r.Vm.stats.Stats.s_deopts > 0);
  Alcotest.(check bool) "a live stack object was promoted" true
    (r.Vm.stats.Stats.s_stack_promotions >= 1);
  Alcotest.(check int) "promoted objects are not also reclaimed"
    r.Vm.stats.Stats.s_stack_allocs
    (r.Vm.stats.Stats.s_stack_reclaimed + r.Vm.stats.Stats.s_stack_promotions);
  (* the tier off: same result, same deopts, nothing to promote *)
  let r_off = run ~iterations ~threshold:30 ~stackalloc:false deopt_promote_src in
  Alcotest.(check (pair string (list string)))
    "stackalloc=off agrees" reference (Test_support.outcome r_off);
  Alcotest.(check int) "nothing promoted with the tier off" 0
    r_off.Vm.stats.Stats.s_stack_promotions

(* ------------------------------------------------------------------ *)
(* Flight recorder: dump write failure must warn, not swallow          *)
(* ------------------------------------------------------------------ *)

(* Point the armed recorder at a file inside a directory that does not
   exist, storm it into triggering, and assert (a) the run's results and
   VM state are exactly those of the writable-path storm, and (b) one
   warning line per failed trigger reaches stderr. The write failure
   used to be swallowed silently. *)
let test_flight_dump_failure_warns () =
  let path =
    Filename.concat
      (Filename.concat (Filename.get_temp_dir_name ()) "mjvm-no-such-dir-4242")
      "dump.jsonl"
  in
  Alcotest.(check bool) "the dump directory really is missing" false
    (Sys.file_exists (Filename.dirname path));
  let saved_trace = Trace.installed () in
  let program = Link.compile_source ~require_main:false Programs.two_branch in
  let config =
    { Jit.default_config with Jit.compile_threshold = 25; osr = false; deopt_storm_limit = 2 }
  in
  let vm = Vm.create ~config program in
  let ring = Trace.create () in
  Trace.set_clock ring (fun () -> Stats.get (Vm.stats vm) Stats.cycles);
  Trace.install ring;
  Flight.arm (Flight.create ~path ring);
  let captured = Filename.temp_file "mjvm_stderr" ".txt" in
  let fd = Unix.openfile captured [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved_stderr = Unix.dup Unix.stderr in
  let restore () =
    flush stderr;
    Unix.dup2 saved_stderr Unix.stderr;
    Unix.close saved_stderr;
    Unix.close fd
  in
  Fun.protect
    ~finally:(fun () ->
      Flight.disarm ();
      (match saved_trace with Some t -> Trace.install t | None -> Trace.uninstall ());
      Sys.remove captured)
    (fun () ->
      let f = Link.find_method program "C" "f" in
      let vint n = Value.Vint n and vbool b = Value.Vbool b in
      flush stderr;
      Unix.dup2 fd Unix.stderr;
      let results =
        Fun.protect ~finally:restore (fun () ->
            Vm.warm_up vm f [ vint 3; vbool false; vbool false ] 40;
            [
              Vm.invoke vm f [ vint 7; vbool true; vbool false ] (* deopt #1 *);
              Vm.invoke vm f [ vint 3; vbool false; vbool false ] (* recompile *);
              Vm.invoke vm f [ vint 7; vbool false; vbool true ] (* deopt #2: pins *);
            ])
      in
      (* the run is unaffected: same control flow as the writable-path
         storm — the guard still pins, and every call still returns *)
      Alcotest.(check bool) "storm guard pinned" true (Vm.interpreter_pinned vm f);
      Alcotest.(check int) "every invoke returned a value" 3
        (List.length (List.filter Option.is_some results));
      (match Flight.armed () with
      | Some fl -> Alcotest.(check int) "the trigger still fired" 1 (Flight.dumps fl)
      | None -> Alcotest.fail "recorder disarmed itself");
      Alcotest.(check bool) "no dump file materialized" false (Sys.file_exists path);
      let text = In_channel.with_open_bin captured In_channel.input_all in
      Alcotest.(check bool) "stderr carries the warning" true
        (Test_support.contains text "mjvm: flight dump failed:"))

(* ------------------------------------------------------------------ *)
(* Differential property                                               *)
(* ------------------------------------------------------------------ *)

(* Small program family pitting stack-eligible materializations (merge
   phis, lock-forced materialization on a synchronized region) against
   heap-forced ones (the object is returned out of its frame). *)
type shape = Merge | Lock | Return_obj

let gen_case =
  QCheck2.Gen.(
    map2
      (fun shape (n, a, b) -> (shape, n, a, b))
      (oneofl [ Merge; Lock; Return_obj ])
      (triple (int_range 20 120) (int_range 1 9) (int_range 1 9)))

let source_of_case (shape, n, a, b) =
  let work =
    match shape with
    | Merge ->
        Printf.sprintf
          "  static int work(int i) {\n\
          \    Point p;\n\
          \    if (i %% 2 == 0) { p = new Point(i, %d); } else { p = new Point(i, %d); }\n\
          \    return p.x + p.y;\n\
          \  }\n"
          a b
    | Lock ->
        (* the synchronized region forces materialization (lock elision
           aside, the monitor needs an identity) but the object still
           dies with the frame *)
        Printf.sprintf
          "  static int work(int i) {\n\
          \    Point p;\n\
          \    if (i %% 2 == 0) { p = new Point(i, %d); } else { p = new Point(i, %d); }\n\
          \    int r = 0;\n\
          \    synchronized (p) { p.x = p.x + %d; r = p.x + p.y; }\n\
          \    return r;\n\
          \  }\n"
          a b a
    | Return_obj ->
        (* escapes through the return value: frame_bounded must reject
           it and every materialization must be a real heap allocation *)
        Printf.sprintf
          "  static Point mk(int i) {\n\
          \    Point p;\n\
          \    if (i %% 2 == 0) { p = new Point(i, %d); } else { p = new Point(i, %d); }\n\
          \    return p;\n\
          \  }\n\
          \  static int work(int i) {\n\
          \    Point q = Main.mk(i);\n\
          \    return q.x + q.y;\n\
          \  }\n"
          a b
  in
  Printf.sprintf
    "class Point { int x; int y; Point(int x, int y) { this.x = x; this.y = y; } }\n\
     class Main {\n\
     %s\
    \  static int main() {\n\
    \    int acc = 0;\n\
    \    int i = 0;\n\
    \    while (i < %d) { acc = acc + Main.work(i); i = i + 1; }\n\
    \    return acc;\n\
    \  }\n\
     }"
    work n

let print_case ((shape, n, a, b) as case) =
  Printf.sprintf "shape=%s n=%d a=%d b=%d\n%s"
    (match shape with Merge -> "merge" | Lock -> "lock" | Return_obj -> "return")
    n a b (source_of_case case)

(* The on/off axis honours MJVM_TEST_STACKALLOC (the matrix sweep and
   the @stackalloc dune alias force one half); unset, both halves run. *)
let stackalloc_axis =
  match Sys.getenv_opt "MJVM_TEST_STACKALLOC" with
  | Some ("off" | "0" | "false") -> [ false ]
  | Some _ -> [ true ]
  | None -> [ true; false ]

(* Across the full opt x tier x OSR x compile-mode matrix crossed with
   the tier on/off, with the deopt oracle armed: every cell agrees with
   the interpreter; the stack-region counters balance (reclaimed +
   promoted never exceeds births, and are identically zero with the
   tier off); and the two execution tiers agree bit-for-bit on every
   deterministic counter within a configuration. *)
let prop_stackalloc_differential =
  QCheck2.Test.make ~name:"stackalloc on/off x config matrix vs interpreter"
    ~count:(Test_env.qcheck_count 15) ~print:print_case gen_case (fun case ->
      let src = source_of_case case in
      let iterations = 6 in
      let reference = Test_support.interp_reference ~iterations src in
      let cells = Test_support.all_cells () in
      List.for_all
        (fun stackalloc ->
          let runs =
            List.map
              (fun cell ->
                let config =
                  Test_support.config_of_cell
                    ~base:
                      {
                        Jit.default_config with
                        Jit.compile_threshold = 4;
                        osr_threshold = 3;
                        stackalloc;
                        oracle = true;
                      }
                    cell
                in
                let vm = Vm.create ~config (Link.compile_source src) in
                let r = Vm.run_main_iterations vm iterations in
                Vm.quiesce vm;
                (cell, r))
              cells
          in
          List.for_all
            (fun ((cell : Test_support.cell), (r : Vm.result)) ->
              let s = r.Vm.stats in
              let ok_outcome = Test_support.outcome r = reference in
              let ok_balance =
                s.Stats.s_stack_reclaimed + s.Stats.s_stack_promotions
                <= s.Stats.s_stack_allocs
              in
              let ok_off =
                stackalloc
                || (s.Stats.s_stack_reclaimed = 0 && s.Stats.s_stack_promotions = 0)
              in
              if not (ok_outcome && ok_balance && ok_off) then
                QCheck2.Test.fail_reportf
                  "cell %s (stackalloc=%b): outcome=%b balance=%b off-clean=%b"
                  (Test_support.cell_name cell) stackalloc ok_outcome ok_balance ok_off
              else true)
            runs
          (* cross-tier parity: within one (opt, osr, mode) configuration
             the direct and closure tiers must agree on every
             deterministic counter, stack-region ones included *)
          && List.for_all
               (fun ((c1 : Test_support.cell), (r1 : Vm.result)) ->
                 List.for_all
                   (fun ((c2 : Test_support.cell), (r2 : Vm.result)) ->
                     if
                       c1.Test_support.c_opt = c2.Test_support.c_opt
                       && c1.Test_support.c_osr = c2.Test_support.c_osr
                       && c1.Test_support.c_mode = c2.Test_support.c_mode
                       && c1.Test_support.c_tier = Jit.Direct
                       && c2.Test_support.c_tier = Jit.Closure
                     then
                       let p1 = Test_support.deterministic_counters r1.Vm.stats
                       and p2 = Test_support.deterministic_counters r2.Vm.stats in
                       let stack (s : Stats.snapshot) =
                         (s.Stats.s_stack_allocs, s.Stats.s_stack_reclaimed,
                          s.Stats.s_stack_promotions)
                       in
                       if p1 <> p2 || stack r1.Vm.stats <> stack r2.Vm.stats then
                         QCheck2.Test.fail_reportf
                           "tier counter divergence in %s vs %s (stackalloc=%b)"
                           (Test_support.cell_name c1) (Test_support.cell_name c2)
                           stackalloc
                       else true
                     else true)
                   runs)
               runs)
        stackalloc_axis)

let () =
  Alcotest.run "stackalloc"
    [
      ( "accounting",
        [ Alcotest.test_case "heap/stack counter parity" `Quick test_accounting_parity ] );
      ( "deopt",
        [ Alcotest.test_case "live stack objects promote" `Quick test_deopt_promotion ] );
      ( "flight",
        [
          Alcotest.test_case "dump write failure warns on stderr" `Quick
            test_flight_dump_failure_warns;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_stackalloc_differential ] );
    ]
