(* Deoptimization and rematerialization tests (§5.5, Figure 8 of the
   paper): cold branches are pruned after warmup; entering one from
   compiled code transfers to the interpreter; scalar-replaced objects
   referenced by the frame state are rematerialized (fields restored,
   locks re-acquired); inlined frames are reconstructed from the
   fs_outer chain. *)

open Pea_bytecode
open Pea_rt
open Pea_vm

let vint n = Value.Vint n

let vbool b = Value.Vbool b

let as_int = function
  | Some (Value.Vint n) -> n
  | other ->
      Alcotest.failf "expected an int result, got %s"
        (match other with None -> "void" | Some v -> Value.string_of_value v)

let setup ?(config = { Jit.default_config with Jit.compile_threshold = 25 }) src =
  let program = Link.compile_source ~require_main:false src in
  (program, Vm.create ~config program)

(* Scalar-replaced object escapes only in the pruned branch: deopt must
   rematerialize it with the right field values. *)
let test_deopt_rematerializes () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 1;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  (* warm up on the hot path until compiled *)
  Vm.warm_up vm f [ vint 7; vbool false ] 40;
  Alcotest.(check bool) "compiled" true (Vm.compiled_graph vm f <> None);
  let before = Stats.snapshot (Vm.stats vm) in
  (* hot path in compiled code: no allocations at all *)
  let r = Vm.invoke vm f [ vint 9; vbool false ] in
  Alcotest.(check int) "hot result" 10 (as_int r);
  let mid = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "no allocation on the hot path" 0
    (mid.Stats.s_allocations - before.Stats.s_allocations);
  Alcotest.(check int) "no deopt yet" 0 (mid.Stats.s_deopts - before.Stats.s_deopts);
  (* now take the cold branch *)
  let r2 = Vm.invoke vm f [ vint 123; vbool true ] in
  Alcotest.(check int) "cold result" 124 (as_int r2);
  let after = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "one deopt" 1 (after.Stats.s_deopts - mid.Stats.s_deopts);
  Alcotest.(check bool) "rematerialized" true
    (after.Stats.s_rematerialized - mid.Stats.s_rematerialized >= 1)

(* Same scenario, but verify the global object's contents through MJ
   code. *)
let test_deopt_global_contents () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 1;\n\
    \  }\n\
    \  static int readGlobal() { if (C.global == null) return 0 - 1; return C.global.val; }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  let read = Link.find_method program "C" "readGlobal" in
  Vm.warm_up vm f [ vint 7; vbool false ] 40;
  Alcotest.(check int) "global still null" (-1) (as_int (Vm.invoke vm read []));
  ignore (Vm.invoke vm f [ vint 5551; vbool true ]);
  Alcotest.(check int) "global has the rematerialized object" 5551
    (as_int (Vm.invoke vm read []))

(* After a deopt the method is recompiled without speculation: the cold
   path no longer deoptimizes. *)
let test_deopt_invalidation () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 1;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 1; vbool false ] 40;
  ignore (Vm.invoke vm f [ vint 2; vbool true ]);
  let s1 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "one deopt" 1 s1.Stats.s_deopts;
  (* the cold path is now compiled in: further cold calls do not deopt *)
  for i = 0 to 9 do
    Alcotest.(check int) "cold result" (100 + i + 1)
      (as_int (Vm.invoke vm f [ vint (100 + i); vbool true ]))
  done;
  let s2 = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "still one deopt" 1 s2.Stats.s_deopts

(* Deopt inside a synchronized region on a scalar-replaced object: the
   rematerialized object must be re-locked so the interpreter's
   monitorexit balances. *)
let test_deopt_relock () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    int r = 0;\n\
    \    synchronized (i) {\n\
    \      i.val = x;\n\
    \      if (cold) { C.global = i; }\n\
    \      r = i.val * 2;\n\
    \    }\n\
    \    return r;\n\
    \  }\n\
    \  static int lockHeld() { if (C.global == null) return 0 - 1; return 7; }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 3; vbool false ] 40;
  let r = Vm.invoke vm f [ vint 21; vbool true ] in
  Alcotest.(check int) "result through deopt" 42 (as_int r);
  (* execution completed without unbalanced-monitor traps, and the global
     object is unlocked again *)
  ignore program

(* Deopt inside an inlined callee: the fs_outer chain reconstructs both
   interpreter frames; the callee's return value flows back into the
   caller's resumed frame. *)
let test_deopt_inlined_frames () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int helper(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 100;\n\
    \  }\n\
    \  static int f(int x, boolean cold) {\n\
    \    int a = helper(x, cold);\n\
    \    return a + 1000;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 1; vbool false ] 40;
  Alcotest.(check bool) "compiled" true (Vm.compiled_graph vm f <> None);
  let before = Stats.snapshot (Vm.stats vm) in
  let r = Vm.invoke vm f [ vint 7; vbool true ] in
  Alcotest.(check int) "result through multi-frame deopt" 1107 (as_int r);
  let after = Stats.snapshot (Vm.stats vm) in
  Alcotest.(check int) "one deopt" 1 (after.Stats.s_deopts - before.Stats.s_deopts)

(* A loop-carried scalar-replaced object at a deopt point. *)
let test_deopt_in_loop () =
  let src =
    "class Acc { int total; }\n\
     class C {\n\
    \  static Acc global;\n\
    \  static int f(int n, boolean cold) {\n\
    \    Acc a = new Acc();\n\
    \    int i = 0;\n\
    \    while (i < n) {\n\
    \      a.total = a.total + i;\n\
    \      if (cold && i == 3) { C.global = a; }\n\
    \      i = i + 1;\n\
    \    }\n\
    \    return a.total;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 10; vbool false ] 40;
  let expected = 45 in
  let r = Vm.invoke vm f [ vint 10; vbool true ] in
  Alcotest.(check int) "result through loop deopt" expected (as_int r);
  ignore program

(* Frame-state shape after PEA (Figure 8): the deopt state references a
   virtual object descriptor rather than an allocation. *)
let test_frame_state_has_virtual () =
  let src =
    "class I { int val; }\n\
     class C {\n\
    \  static I global;\n\
    \  static int f(int x, boolean cold) {\n\
    \    I i = new I();\n\
    \    i.val = x;\n\
    \    if (cold) { C.global = i; }\n\
    \    return i.val + 1;\n\
    \  }\n\
     }"
  in
  let program, vm = setup src in
  let f = Link.find_method program "C" "f" in
  Vm.warm_up vm f [ vint 7; vbool false ] 40;
  match Vm.compiled_graph vm f with
  | None -> Alcotest.fail "not compiled"
  | Some g ->
      let found = ref false in
      Pea_ir.Graph.iter_blocks
        (fun b ->
          match b.Pea_ir.Graph.term with
          | Pea_ir.Graph.Deopt { d_state = fs; _ } ->
              if fs.Pea_ir.Frame_state.fs_virtuals <> [] then begin
                found := true;
                let _, vd = List.hd fs.Pea_ir.Frame_state.fs_virtuals in
                (match vd.Pea_ir.Frame_state.vd_shape with
                | Pea_ir.Frame_state.Obj_shape c ->
                    Alcotest.(check string) "virtual class" "I" c.Classfile.cls_name
                | Pea_ir.Frame_state.Arr_shape _ -> Alcotest.fail "expected an object shape")
              end
          | _ -> ())
        g;
      Alcotest.(check bool) "deopt state references a virtual object" true !found

let () =
  Alcotest.run "deopt"
    [
      ( "deopt",
        [
          Alcotest.test_case "rematerializes" `Quick test_deopt_rematerializes;
          Alcotest.test_case "global contents" `Quick test_deopt_global_contents;
          Alcotest.test_case "invalidation" `Quick test_deopt_invalidation;
          Alcotest.test_case "relock" `Quick test_deopt_relock;
          Alcotest.test_case "inlined frames" `Quick test_deopt_inlined_frames;
          Alcotest.test_case "in loop" `Quick test_deopt_in_loop;
          Alcotest.test_case "frame state has virtual" `Quick test_frame_state_has_virtual;
        ] );
    ]
